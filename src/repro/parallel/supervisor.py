"""The supervised multi-process checking backend.

``check_scope(parallel=N)`` hands the per-implementation proof jobs to a
:class:`WorkerSupervisor`, which schedules them onto a pool of
process-isolated workers (:mod:`repro.parallel.worker`) and enforces the
guarantees the cooperative serial driver cannot:

* **hard wall-clock timeout per job** — a runaway quantifier loop that
  never reaches a cooperative poll point is SIGKILLed and recorded as
  ``TIMED_OUT`` with an ``OL901`` diagnostic; the rest of the batch is
  untouched;
* **worker-death detection and retry** — a nonzero exit, a killing
  signal, or a lost heartbeat triggers a retry with exponential backoff
  on a fresh worker, up to ``max_retries`` attempts; after exhaustion
  the job is quarantined as ``INTERNAL_ERROR`` with an ``OL902``
  diagnostic, so one poisonous VC can never sink the scope;
* **prompt scope-budget enforcement** — when ``Limits.scope_time_budget``
  expires, queued jobs are cancelled and in-flight workers killed within
  one poll interval, instead of waiting for each worker to notice.

Determinism: results are merged in *job order* (declaration order of the
implementations — the exact order the serial driver uses), so the
rendered report is independent of scheduling, worker count, and
completion order; ``CheckReport.to_dict`` is byte-identical to a serial
run modulo wall-clock fields.

Observability: under an installed tracer the supervisor emits one
``supervisor`` pipeline span, one implementation span per job carrying
``worker``/``attempt``/``cache_hit`` args, and grafts each worker's own
span tree (vcgen/prove stage spans with their per-VC children)
underneath, so ``--trace``/``--profile`` cover parallel runs end to end.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace
from multiprocessing.connection import wait as connection_wait
from typing import Dict, List, Optional, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.obs import events as obs_events
from repro.oolong.program import Scope
from repro.parallel.cache import (
    ResultCache,
    cache_key,
    payload_to_verdict,
    verdict_to_payload,
)
from repro.parallel.jobs import (
    Job as _Job,
    backoff_delay,
    build_jobs,
    deadline_verdict,
    hard_timeout_verdict,
    quarantine_verdict,
)
from repro.parallel.worker import (
    HEARTBEAT_INTERVAL,
    JobRequest,
    JobResult,
    worker_main,
)
from repro.prover.core import Limits, ProverStats
from repro.testing.faults import (
    record_supervisor_fault,
    supervisor_fault_hits,
)


@dataclass(frozen=True)
class ParallelOptions:
    """Supervision policy for one parallel ``check_scope`` run."""

    #: Worker process count (the ``-j`` of the CLI).
    jobs: int = 2
    #: Hard wall-clock budget per job attempt; exceeded → the worker is
    #: SIGKILLed and the job records ``TIMED_OUT``/``OL901``. ``None``
    #: bounds attempts only by the scope budget (if any).
    job_timeout: Optional[float] = None
    #: Retries after a worker death before the job is quarantined as
    #: ``INTERNAL_ERROR``/``OL902``.
    max_retries: int = 2
    #: Base of the exponential retry backoff (seconds): attempt *n*
    #: waits ``backoff_base * 2**(n-1)``, stretched by jitter.
    backoff_base: float = 0.05
    #: Deterministic jitter fraction on the retry backoff (see
    #: :func:`repro.parallel.jobs.backoff_delay`): simultaneous worker
    #: deaths must not retry in lockstep. 0 disables it.
    backoff_jitter: float = 0.5
    #: A worker whose heartbeat is older than this while a job is
    #: running is considered dead (frozen interpreter) and killed.
    heartbeat_timeout: float = 2.0
    #: Supervision loop tick; bounds scope-budget overshoot and
    #: timeout-detection latency.
    poll_interval: float = 0.05
    #: ``multiprocessing`` start method; default prefers ``fork`` (fast,
    #: shares the parsed scope) and falls back to ``spawn``.
    start_method: Optional[str] = None

    def resolved_start_method(self) -> str:
        if self.start_method is not None:
            return self.start_method
        methods = multiprocessing.get_all_start_methods()
        return "fork" if "fork" in methods else "spawn"


class _WorkerHandle:
    """Parent-side view of one worker process."""

    def __init__(self, context, worker_id: int, scope: Scope):
        self.worker_id = worker_id
        parent_conn, child_conn = context.Pipe(duplex=True)
        self.conn = parent_conn
        self.heartbeat = context.Value("d", time.monotonic(), lock=False)
        self.process = context.Process(
            target=worker_main,
            args=(
                child_conn,
                self.heartbeat,
                scope,
                worker_id,
                os.getpid(),
            ),
            name=f"oolong-worker-{worker_id}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.job: Optional[_Job] = None
        self.job_started: float = 0.0
        self.job_deadline: Optional[float] = None

    @property
    def idle(self) -> bool:
        return self.job is None

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        """SIGKILL the worker and reap it; idempotent."""
        try:
            self.process.kill()
        except (OSError, ValueError):
            pass
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def shutdown(self) -> None:
        """Polite stop for an idle worker (sentinel, then reap)."""
        try:
            self.conn.send(None)
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout=1.0)
        if self.process.is_alive():
            self.kill()
        else:
            try:
                self.conn.close()
            except OSError:
                pass


@dataclass
class ParallelOutcome:
    """What the supervisor hands back to the checker driver."""

    #: Jobs in declaration order, each carrying its verdict (always
    #: present on return) and optional advisory explain-crash.
    jobs: List[_Job]
    cache: Optional[ResultCache] = None


class WorkerSupervisor:
    """Schedules proof jobs onto supervised workers and merges results."""

    def __init__(
        self,
        scope: Scope,
        limits: Optional[Limits],
        *,
        options: ParallelOptions,
        explain: bool = False,
        cache: Optional[ResultCache] = None,
        scope_deadline: Optional[float] = None,
        preresolved: Optional[Dict[Tuple[str, int], object]] = None,
    ):
        self.scope = scope
        self.options = options
        self.explain = explain
        # Explain runs bypass the cache: explanations are not cached, so
        # a hit would silently drop the blame report the caller asked for.
        self.cache = cache if not explain else None
        self.scope_deadline = scope_deadline
        #: Verdicts decided before scheduling (static discharge): the
        #: matching jobs are marked done up front — no worker, no cache
        #: read or write, deadline-independent.
        self.preresolved = dict(preresolved or {})
        self.job_limits = (
            replace(limits, scope_time_budget=None, scope_deadline=None)
            if limits is not None
            else None
        )
        self.jobs = build_jobs(scope)
        self.workers: List[_WorkerHandle] = []
        self._context = multiprocessing.get_context(
            options.resolved_start_method()
        )
        self._next_worker_id = 0
        self._kill_faults = supervisor_fault_hits("worker-kill")
        self._hang_faults = supervisor_fault_hits("worker-hang")
        self._corrupt_faults = supervisor_fault_hits("cache-corrupt")

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def run(self) -> ParallelOutcome:
        from repro import obs

        with obs.span(
            "supervisor",
            obs.CAT_PIPELINE,
            jobs=len(self.jobs),
            workers=self.options.jobs,
        ):
            tracer = obs.current()
            parent_span = (
                tracer.current_index() if tracer is not None else None
            )
            try:
                self._apply_preresolved(tracer, parent_span)
                self._serve_from_cache(tracer, parent_span)
                pending = [job for job in self.jobs if not job.done]
                if pending:
                    self._supervise(pending, tracer, parent_span)
            finally:
                self._shutdown_workers()
        return ParallelOutcome(jobs=self.jobs, cache=self.cache)

    # ------------------------------------------------------------------
    # Cache pre-pass
    # ------------------------------------------------------------------

    def _apply_preresolved(self, tracer, parent_span) -> None:
        for job in self.jobs:
            verdict = self.preresolved.get((job.proc_name, job.impl_index))
            if verdict is None:
                continue
            job.verdict = verdict
            obs_events.emit_impl_checked(verdict, preresolved=True)
            if tracer is not None:
                now = time.perf_counter()
                tracer.record(
                    job.impl.name,
                    "implementation",
                    now,
                    now,
                    parent=parent_span,
                    args={
                        "discharged": True,
                        "status": job.verdict.status.name.lower(),
                    },
                )

    def _serve_from_cache(self, tracer, parent_span) -> None:
        if self.cache is None:
            return
        for job in self.jobs:
            if job.done:
                # Preresolved (statically discharged) jobs never touch
                # the cache — in either direction.
                continue
            job.key = cache_key(
                self.scope, job.impl, job.impl_index, self.job_limits
            )
            payload = self.cache.load(job.key)
            if payload is None:
                continue
            job.verdict = payload_to_verdict(
                payload, job.impl, job.impl_index
            )
            job.cache_hit = True
            obs_events.emit_impl_checked(job.verdict, cache_hit=True)
            if tracer is not None:
                now = time.perf_counter()
                tracer.record(
                    job.impl.name,
                    "implementation",
                    now,
                    now,
                    parent=parent_span,
                    args={
                        "cache_hit": True,
                        "status": job.verdict.status.name.lower(),
                    },
                )

    # ------------------------------------------------------------------
    # The supervision loop
    # ------------------------------------------------------------------

    def _supervise(self, pending: List[_Job], tracer, parent_span) -> None:
        queue: List[_Job] = list(pending)
        inflight = 0
        options = self.options
        while queue or inflight:
            now = time.monotonic()
            if self.scope_deadline is not None and now >= self.scope_deadline:
                self._cancel_everything(queue)
                return
            self._ensure_workers(len(queue))
            inflight = sum(1 for w in self.workers if not w.idle)

            # Assign eligible jobs to idle workers.
            for worker in self.workers:
                if not queue:
                    break
                if not worker.idle or not worker.alive():
                    continue
                job = self._next_eligible(queue, now)
                if job is None:
                    break
                self._assign(worker, job, now, queue)
                inflight += 1

            if not queue and inflight == 0:
                return

            timeout = self._wait_timeout(queue, now)
            ready = connection_wait(
                [w.conn for w in self.workers if not w.conn.closed],
                timeout=timeout,
            )
            for conn in ready:
                worker = next(
                    (w for w in self.workers if w.conn is conn), None
                )
                if worker is None:
                    continue
                self._drain(worker, queue, tracer, parent_span)

            self._police(queue, tracer, parent_span)
            inflight = sum(1 for w in self.workers if not w.idle)

    def _next_eligible(self, queue: List[_Job], now: float) -> Optional[_Job]:
        for index, job in enumerate(queue):
            if job.eligible_at <= now:
                return queue.pop(index)
        return None

    def _wait_timeout(self, queue: List[_Job], now: float) -> float:
        timeout = self.options.poll_interval
        if self.scope_deadline is not None:
            timeout = min(timeout, max(0.0, self.scope_deadline - now))
        for job in queue:
            if job.eligible_at > now:
                timeout = min(timeout, job.eligible_at - now)
        return max(timeout, 0.001)

    def _ensure_workers(self, queued: int) -> None:
        self.workers = [w for w in self.workers if not w.conn.closed]
        alive = [w for w in self.workers if w.alive() or not w.idle]
        busy = sum(1 for w in alive if not w.idle)
        target = min(self.options.jobs, busy + queued)
        while len(alive) < target:
            handle = _WorkerHandle(
                self._context, self._next_worker_id, self.scope
            )
            self._next_worker_id += 1
            self.workers.append(handle)
            alive.append(handle)
            obs_events.emit(
                "worker-spawn",
                worker=str(handle.worker_id),
                pid=handle.process.pid,
            )

    def _assign(
        self, worker: _WorkerHandle, job: _Job, now: float, queue: List[_Job]
    ) -> None:
        inject = None
        if job.attempts == 0:
            if job.job_id in self._kill_faults:
                inject = "kill"
                record_supervisor_fault("worker-kill", job.job_id, "raise")
            elif job.job_id in self._hang_faults:
                inject = "hang"
                record_supervisor_fault("worker-hang", job.job_id, "raise")
        request = JobRequest(
            job_id=job.job_id,
            proc_name=job.proc_name,
            impl_index=job.impl_index,
            attempt=job.attempts,
            limits=self.job_limits,
            explain=self.explain,
            inject=inject,
        )
        try:
            worker.conn.send(request)
        except (OSError, ValueError, BrokenPipeError):
            # The worker died between spawn and first send; treat like a
            # mid-job death so the retry accounting stays uniform.
            worker.job = job
            worker.job_started = now
            self._worker_died(worker, queue, "died before accepting the job")
            return
        worker.job = job
        worker.job_started = now
        obs_events.emit(
            "job-assigned",
            job=job.job_id,
            worker=str(worker.worker_id),
            attempt=job.attempts,
            impl=job.impl.name,
            index=job.impl_index,
        )
        deadline = None
        if self.options.job_timeout is not None:
            deadline = now + self.options.job_timeout
        if self.scope_deadline is not None:
            deadline = (
                self.scope_deadline
                if deadline is None
                else min(deadline, self.scope_deadline)
            )
        worker.job_deadline = deadline
        worker.heartbeat.value = time.monotonic()

    # ------------------------------------------------------------------
    # Result, death, and timeout handling
    # ------------------------------------------------------------------

    def _drain(self, worker, queue, tracer, parent_span) -> None:
        try:
            result: JobResult = worker.conn.recv()
        except (EOFError, OSError):
            if worker.job is not None:
                exit_code = worker.process.exitcode
                self._worker_died(
                    worker,
                    queue,
                    f"connection lost (exit code {exit_code})",
                )
            else:
                # An idle worker died; just reap it. Replacements are
                # spawned on demand by _ensure_workers.
                worker.kill()
            return
        job = worker.job
        if job is None or result.job_id != job.job_id:
            return  # stale result from a superseded attempt
        self._finish_job(worker, job, result, tracer, parent_span)

    def _finish_job(self, worker, job, result, tracer, parent_span) -> None:
        from repro.vcgen.checker import ImplStatus, ImplVerdict

        if result.failure is not None:
            job.verdict = ImplVerdict(
                impl=job.impl,
                index=job.impl_index,
                status=ImplStatus.INTERNAL_ERROR,
                stats=ProverStats(),
                error=Diagnostic(
                    code="OL900",
                    message=(
                        "worker job failed internally: "
                        + result.failure.strip().splitlines()[-1]
                    ),
                    impl=job.impl.name,
                ),
            )
        else:
            verdict = result.verdict
            # Re-anchor the pickled copy on the parent's own AST object
            # so report identities match the serial driver's exactly.
            verdict.impl = job.impl
            job.verdict = verdict
            job.explain_crash = result.explain_crash
            self._store_in_cache(job)
        if tracer is not None:
            job_span = tracer.record(
                job.impl.name,
                "implementation",
                # The supervisor measures in time.monotonic(); spans use
                # perf_counter. On the platforms workers run on both are
                # CLOCK_MONOTONIC, so the domains coincide.
                worker.job_started,
                time.perf_counter(),
                parent=parent_span,
                args={
                    "worker": worker.worker_id,
                    "attempt": result.attempt,
                    "cache_hit": False,
                    "status": job.verdict.status.name.lower(),
                },
            )
            if result.spans:
                tracer.absorb(result.spans, parent=job_span)
            if result.metrics:
                tracer.metrics.merge_dict(result.metrics)
        obs_events.emit_impl_checked(
            job.verdict,
            worker=str(worker.worker_id),
            attempt=result.attempt,
        )
        worker.job = None
        worker.job_deadline = None

    def _store_in_cache(self, job: _Job) -> None:
        if self.cache is None or job.key is None:
            return
        payload = verdict_to_payload(job.verdict)
        if payload is None:
            return
        stored = self.cache.store(
            job.key, payload, impl=job.impl.name, index=job.impl_index
        )
        if stored and job.job_id in self._corrupt_faults:
            self._corrupt_entry(job.key)
            record_supervisor_fault("cache-corrupt", job.job_id, "corrupt")

    def _corrupt_entry(self, key: str) -> None:
        """Deliberately damage a just-written entry (fault injection)."""
        path = os.path.join(self.cache.directory, f"{key}.json")
        try:
            with open(path, "r+") as handle:
                handle.seek(max(os.path.getsize(path) // 2, 1))
                handle.write("\x00GARBAGE\x00")
        except OSError:
            pass

    def _worker_died(self, worker, queue: List[_Job], reason: str) -> None:
        job = worker.job
        worker.job = None
        worker.kill()
        obs_events.emit(
            "worker-died",
            worker=str(worker.worker_id),
            reason=reason,
            job=job.job_id if job is not None else None,
        )
        if job is None or job.done:
            return
        job.attempts += 1
        job.death_reasons.append(reason)
        if job.attempts > self.options.max_retries:
            self._quarantine(job)
            return
        backoff = backoff_delay(
            self.options.backoff_base,
            job.attempts,
            jitter=self.options.backoff_jitter,
            token=f"job{job.job_id}",
        )
        job.eligible_at = time.monotonic() + backoff
        queue.append(job)
        obs_events.emit(
            "job-retry",
            job=job.job_id,
            impl=job.impl.name,
            index=job.impl_index,
            attempt=job.attempts,
            backoff=round(backoff, 6),
            reason=reason,
        )

    def _quarantine(self, job: _Job) -> None:
        job.verdict = quarantine_verdict(job)
        obs_events.emit(
            "job-quarantined",
            job=job.job_id,
            impl=job.impl.name,
            index=job.impl_index,
            attempt=job.attempts,
            code="OL902",
        )
        obs_events.emit_impl_checked(job.verdict)

    def _police(self, queue, tracer, parent_span) -> None:
        """Detect deaths, lost heartbeats, and hard-timeout overruns."""
        now = time.monotonic()
        for worker in list(self.workers):
            if worker.conn.closed:
                continue
            if worker.idle:
                continue
            if not worker.alive():
                exit_code = worker.process.exitcode
                self._worker_died(
                    worker,
                    queue,
                    f"exit code {exit_code}"
                    if (exit_code or 0) >= 0
                    else f"killed by signal {-exit_code}",
                )
                continue
            stale = now - worker.heartbeat.value
            if stale > max(
                self.options.heartbeat_timeout, 4 * HEARTBEAT_INTERVAL
            ):
                self._worker_died(
                    worker,
                    queue,
                    f"lost heartbeat ({stale:.2f}s stale)",
                )
                continue
            if worker.job_deadline is not None and now >= worker.job_deadline:
                self._hard_timeout(worker)

    def _hard_timeout(self, worker) -> None:
        job = worker.job
        worker.job = None
        worker.kill()
        if job is None or job.done:
            return
        budget = self.options.job_timeout
        detail = (
            f"hard job timeout ({budget:.3g}s) exceeded"
            if budget is not None
            else "scope time budget exhausted"
        )
        job.verdict = hard_timeout_verdict(
            job,
            f"{detail} while this implementation was being "
            f"checked; worker {worker.worker_id} killed",
        )
        obs_events.emit(
            "job-hard-timeout",
            job=job.job_id,
            impl=job.impl.name,
            index=job.impl_index,
            worker=str(worker.worker_id),
            code="OL901",
        )
        obs_events.emit_impl_checked(job.verdict)

    # ------------------------------------------------------------------
    # Scope-budget cancellation and shutdown
    # ------------------------------------------------------------------

    def _cancel_everything(self, queue: List[_Job]) -> None:
        """The scope budget expired: kill in-flight work, fail the rest.

        Matches the serial driver's vocabulary: implementations that
        were running report the mid-check ``OL901``, queued ones the
        before-check variant.
        """
        for worker in self.workers:
            job = worker.job
            worker.job = None
            worker.kill()
            if job is not None and not job.done:
                job.verdict = deadline_verdict(job, before=False)
                obs_events.emit(
                    "job-deadline", job=job.job_id, code="OL901"
                )
                obs_events.emit_impl_checked(job.verdict)
        for job in queue:
            if not job.done:
                job.verdict = deadline_verdict(job, before=True)
                obs_events.emit(
                    "job-deadline", job=job.job_id, code="OL901"
                )
                obs_events.emit_impl_checked(job.verdict)
        queue.clear()

    def _shutdown_workers(self) -> None:
        for worker in self.workers:
            if worker.conn.closed:
                continue
            if worker.idle and worker.alive():
                worker.shutdown()
            else:
                worker.kill()
        self.workers = []


def run_parallel_checks(
    scope: Scope,
    limits: Optional[Limits],
    *,
    options: ParallelOptions,
    explain: bool = False,
    cache: Optional[ResultCache] = None,
    scope_deadline: Optional[float] = None,
    preresolved: Optional[Dict[Tuple[str, int], object]] = None,
) -> ParallelOutcome:
    """Convenience wrapper: build a supervisor, run it, return the jobs."""
    supervisor = WorkerSupervisor(
        scope,
        limits,
        options=options,
        explain=explain,
        cache=cache,
        scope_deadline=scope_deadline,
        preresolved=preresolved,
    )
    return supervisor.run()
