"""The paper's example programs, reconstructed as oolong sources.

Every program in the paper appears here under a named constant, together
with a few companions the experiments need (interface-only scopes, the
private implementations that extend them, runtime drivers).
"""

#: Section 2's motivating interface: a rational-number library whose
#: public `value` group hides the `num`/`den` representation.
RATIONAL = """
group value
field num in value
field den in value
proc normalize(r) modifies r.value
impl normalize(r) {
  assume r != null ;
  r.num := 1 ;
  r.den := 1
}
"""

#: Section 2's stack-over-vector sketch: `vec` is a pivot field and
#: `push` touches the underlying vector through the rep inclusion.
STACK_VECTOR = """
group contents
group elems
field cnt in elems
field data in elems
field vec in contents maps elems into contents
proc vec_add(v) modifies v.elems
impl vec_add(v) {
  assume v != null ;
  v.cnt := v.cnt + 1 ;
  v.data := 0
}
proc push(s, o) modifies s.contents
impl push(s, o) {
  assume s != null ;
  ( assume s.vec = null ; s.vec := new()
    []
    assume s.vec != null ; skip ) ;
  vec_add(s.vec)
}
proc new_stack(r) modifies r.contents
impl new_stack(r) {
  assume r != null ;
  r.vec := new()
}
"""

#: Section 3.0, client scope: the declaration of the pivot field `vec` is
#: NOT in scope, so a modular checker must verify q's assert from the
#: specifications of push and m alone — sound thanks to pivot uniqueness.
SECTION3_CLIENT = """
group contents
field cnt
field obj
proc push(st, o) modifies st.contents
proc m(st, r) modifies r.obj
proc q()
impl q() {
  var st in var result in var v in var n in
    st := new() ; result := new() ;
    m(st, result) ;
    v := result.obj ;
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end end end end
}
"""

#: Section 3.0, the private stack extension whose impl of m leaks the
#: pivot value — rejected by the pivot uniqueness restriction.
SECTION3_LEAKING_M = """
field vec maps cnt into contents
impl m(st, r) { r.obj := st.vec }
"""

#: A well-behaved extension of the client scope: m returns a fresh object,
#: push modifies the stack through its pivot legally.
SECTION3_HONEST_IMPLS = """
field vec maps cnt into contents
impl m(st, r) { r.obj := new() }
impl push(st, o) {
  assume st != null ;
  ( assume st.vec = null ; st.vec := new()
    []
    assume st.vec != null ; skip ) ;
  poke(st.vec)
}
proc poke(v) modifies v.cnt
impl poke(v) { assume v != null ; v.cnt := v.cnt + 1 }
"""

#: A client like Section 3.0's q, but initializing the stack first so the
#: leaked pivot value is non-null: the variant used for the *runtime*
#: unsoundness demonstration. Verifies modularly in this scope.
SECTION3_CLIENT_INIT = """
group contents
field cnt
field obj
proc init(st) modifies st.contents
proc push(st, o) modifies st.contents
proc m(st, r) modifies r.obj
proc q2()
impl q2() {
  var st in var result in var v in var n in
    st := new() ; result := new() ;
    init(st) ;
    m(st, result) ;
    v := result.obj ;
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end end end end
}
"""

#: The private stack module for the runtime demonstration: a pivot-backed
#: representation, an honest init and push — and the alias-leaking m of
#: Section 3.0. The full checker rejects m syntactically; the naive
#: baseline verifies every implementation here, yet running q2 makes its
#: assert fail: modular soundness is lost without the restrictions.
SECTION3_UNSOUND_IMPLS = """
field vec in contents maps cnt into contents
impl init(st) {
  assume st != null ;
  st.vec := new()
}
impl push(st, o) {
  assume st != null ;
  assume st.vec != null ;
  st.vec.cnt := o + 0
}
impl m(st, r) {
  assume r != null ;
  r.obj := st.vec
}
"""

#: Section 3.1: w's assert is verifiable modularly (owner exclusion holds
#: on entry), but only because calls like w(st, st.vec) are rejected.
SECTION3_W = """
group contents
field cnt
field vec maps cnt into contents
proc push(st, o) modifies st.contents
proc w(st, v) modifies st.contents
impl w(st, v) {
  var n in
    n := v.cnt ;
    push(st, 3) ;
    assert n = v.cnt
  end
}
"""

#: Section 3.1's forbidden call: passing the pivot value st.vec to a
#: callee licensed to modify st.contents violates owner exclusion.
SECTION3_OWNER_BAD_CALL = """
proc bad(st) modifies st.contents
impl bad(st) { assume st != null ; assume st.vec != null ; w(st, st.vec) }
"""

#: A runtime driver for the Section 3.1 scenario: builds a stack whose
#: pivot points at a vector, then makes the forbidden call ``bad``. Every
#: implementation in SECTION3_W + SECTION3_OWNER_BAD_CALL + this driver is
#: accepted by the *naive* checker (which drops owner exclusion), yet
#: running ``main`` makes w's assert fail: push updates the underlying
#: vector through the rep inclusion, changing ``v.cnt`` under w's feet.
SECTION3_OWNER_DRIVER = """
impl push(st, o) {
  assume st != null ;
  assume st.vec != null ;
  st.vec.cnt := o + 0
}
proc main()
impl main() {
  var st in
    st := new() ;
    st.vec := new() ;
    bad(st)
  end
}
"""

#: Section 5, first example: data groups reached through a two-field path.
SECTION5_FIRST = """
field c
field d
field f
group g
proc p(t) modifies t.c.d.g
proc q(u) modifies u.g
impl p(t) {
  assume t != null ;
  var y in
    y := t.f ;
    q(t.c.d) ;
    assert y = t.f
  end
}
"""

#: Section 5, second example: Leino-Nelson's swinging-pivots motivator;
#: pivot uniqueness subsumes the swinging pivots restriction.
ONCE_TWICE = """
group g
proc once(t) modifies t.g
proc twice(t) modifies t.g
impl twice(t) { once(t) ; once(t) }
"""

#: Section 5, third example: linked lists with the cyclic rep inclusion
#: g —next→ g. The paper's Simplify-based checker diverged on this one.
LINKED_LIST = """
group g
field value in g
field next maps g into g
proc updateAll(t) modifies t.g
impl updateAll(t) {
  assume t != null ;
  t.value := t.value + 1 ;
  ( assume t.next = null
    []
    assume t.next != null ; updateAll(t.next) )
}
"""

#: Section 3.0's leak laundered through an intermediate local: the
#: syntactic pass flags the pivot *read* (``tmp := st.vec``) but cannot
#: see that the store ``r.obj := tmp`` is the escape — only the
#: flow-sensitive analysis connects the two and reports the full path.
SECTION3_LAUNDERED_M = """
field vec maps cnt into contents
impl m(st, r) {
  var tmp in
    tmp := st.vec ;
    r.obj := tmp
  end
}
"""

#: A rational-number library whose modifies list over-approximates: the
#: `cache` group is declared modifiable but no implementation ever
#: touches it. Verifies fine (frames may be over-broad); the inference
#: pass reports the removable group as an OL302 lint.
RATIONAL_OVERBROAD = """
group value
group cache
field num in value
field den in value
field memo in cache
proc normalize(r) modifies r.value, r.cache
impl normalize(r) {
  assume r != null ;
  r.num := 1 ;
  r.den := 1
}
proc touch_memo(r) modifies r.cache
impl touch_memo(r) { assume r != null ; r.memo := 0 }
"""

#: Every verifiable program of the paper, keyed by experiment id.
PAPER_PROGRAMS = {
    "RATIONAL": RATIONAL,
    "STACK_VECTOR": STACK_VECTOR,
    "EX-3.0-client": SECTION3_CLIENT,
    "EX-3.1-w": SECTION3_W,
    "EX-5.1": SECTION5_FIRST,
    "EX-5.2": ONCE_TWICE,
    "EX-5.3": LINKED_LIST,
}
