"""The program corpus: every example from the paper plus synthetic
generators for scaling benchmarks."""

from repro.corpus.programs import (
    LINKED_LIST,
    ONCE_TWICE,
    PAPER_PROGRAMS,
    RATIONAL,
    SECTION3_CLIENT,
    SECTION3_LEAKING_M,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_W,
    SECTION5_FIRST,
    STACK_VECTOR,
)
from repro.corpus.generators import (
    generate_call_chain,
    generate_deep_groups,
    generate_pivot_tower,
    generate_wide_scope,
)

__all__ = [
    "LINKED_LIST",
    "ONCE_TWICE",
    "PAPER_PROGRAMS",
    "RATIONAL",
    "SECTION3_CLIENT",
    "SECTION3_LEAKING_M",
    "SECTION3_OWNER_BAD_CALL",
    "SECTION3_W",
    "SECTION5_FIRST",
    "STACK_VECTOR",
    "generate_call_chain",
    "generate_deep_groups",
    "generate_pivot_tower",
    "generate_wide_scope",
]
