"""Synthetic oolong program generators for scaling benchmarks.

Each generator produces a self-contained, well-formed, verifiable source
text whose size is controlled by a parameter, letting the SCALE experiment
measure checker cost along different axes: declaration count, local
inclusion depth, pivot-chain depth, and call-chain length.
"""

from __future__ import annotations

from typing import List


def generate_wide_scope(fields: int) -> str:
    """A scope with one group, many fields, and one verifiable impl.

    Scales the *declaration count* (and therefore the size of BP_D).
    """
    lines: List[str] = ["group data"]
    for index in range(fields):
        lines.append(f"field f{index} in data")
    lines.append("proc touch(t) modifies t.data")
    body = " ;\n  ".join(f"t.f{i} := {i}" for i in range(fields)) or "skip"
    lines.append("impl touch(t) {\n  assume t != null ;\n  " + body + "\n}")
    return "\n".join(lines)


def generate_deep_groups(depth: int) -> str:
    """A linear tower of nested data groups g0 in g1 in ... in g<depth>.

    Scales the *local inclusion depth* the prover's linc reasoning crosses:
    the impl is licensed on the outermost group but writes the innermost
    field.
    """
    lines: List[str] = [f"group g{depth}"]
    for level in range(depth - 1, -1, -1):
        lines.append(f"group g{level} in g{level + 1}")
    lines.append("field leaf in g0")
    lines.append(f"proc deepen(t) modifies t.g{depth}")
    lines.append("impl deepen(t) {\n  assume t != null ;\n  t.leaf := 1\n}")
    return "\n".join(lines)


def generate_pivot_tower(depth: int) -> str:
    """A chain of rep inclusions: g0 —p0→ g1 —p1→ ... —p(n-1)→ gn.

    Scales the *pivot chain depth*: the impl holds a licence on the root
    group and writes through the whole pivot chain, exercising the
    inc-step axiom ``depth`` times.
    """
    lines: List[str] = []
    for level in range(depth + 1):
        lines.append(f"group g{level}")
    for level in range(depth):
        lines.append(f"field p{level} maps g{level + 1} into g{level}")
    lines.append("field payload in g" + str(depth))
    lines.append("proc drill(t) modifies t.g0")
    path = "t" + "".join(f".p{level}" for level in range(depth))
    guards = []
    prefix = "t"
    for level in range(depth):
        prefix = f"{prefix}.p{level}"
        guards.append(f"assume {prefix} != null")
    body_lines = ["assume t != null"] + guards + [f"{path}.payload := 7"]
    lines.append("impl drill(t) {\n  " + " ;\n  ".join(body_lines) + "\n}")
    return "\n".join(lines)


def generate_benign_copies(copies: int) -> str:
    """Implementations that copy their formal through ``copies`` locals
    without ever storing it to the heap.

    Each copy is a *restriction* violation (the syntactic pass must flag
    it — the paper's rules confine formals unconditionally), but the
    copied value provably never escapes, so the flow-sensitive escape
    analysis reports nothing: the generator scales the precision gap the
    differential test measures.
    """
    lines: List[str] = ["group data", "field payload in data"]
    lines.append("proc probe(t) modifies t.data")
    chain = []
    for index in range(copies):
        source = "t" if index == 0 else f"c{index - 1}"
        chain.append(f"c{index} := {source}")
    binders = " ".join(f"var c{index} in" for index in range(copies))
    ends = " ".join("end" for _ in range(copies))
    body_parts = ["assume t != null"] + chain + ["t.payload := 1"]
    body = " ;\n    ".join(body_parts)
    lines.append(f"impl probe(t) {{\n  {binders}\n    {body}\n  {ends}\n}}")
    return "\n".join(lines)


def generate_impl_farm(impls: int, fields: int = 6) -> str:
    """A scope with ``impls`` independent implementations of comparable cost.

    Scales the *number of jobs* a run produces: each impl writes every
    field of the shared group, so per-impl proof cost is controlled by
    ``fields`` while the job count is controlled by ``impls``. This is
    the parallel-checking workload — scope monotonicity makes each impl
    an independent unit of work, so an impl farm is what a supervisor
    with N workers can actually spread out.
    """
    lines: List[str] = ["group data"]
    for index in range(fields):
        lines.append(f"field f{index} in data")
    for index in range(impls):
        lines.append(f"proc job{index}(t) modifies t.data")
    for index in range(impls):
        body = " ;\n  ".join(
            f"t.f{field} := {index + field}" for field in range(fields)
        )
        lines.append(
            f"impl job{index}(t) {{\n  assume t != null ;\n  {body}\n}}"
        )
    return "\n".join(lines)


def generate_call_chain(length: int) -> str:
    """A chain of procedures p0 -> p1 -> ... each with the same licence.

    Scales the *number of call frames* the wlp threads through (one frame
    quantifier per call).
    """
    lines: List[str] = ["group data", "field payload in data"]
    for index in range(length + 1):
        lines.append(f"proc p{index}(t) modifies t.data")
    lines.append(
        f"impl p{length}(t) {{ assume t != null ; t.payload := {length} }}"
    )
    for index in range(length - 1, -1, -1):
        lines.append(f"impl p{index}(t) {{ p{index + 1}(t) }}")
    return "\n".join(lines)
