"""Reproduction of *Using Data Groups to Specify and Check Side Effects*.

K. Rustan M. Leino, Arnd Poetzsch-Heffter, Yunhong Zhou. PLDI 2002.

This package implements, from scratch:

* the **oolong** language (lexer, parser, AST, pretty printer, scopes,
  well-formedness) — :mod:`repro.oolong`;
* the **pivot uniqueness** syntactic restriction checker —
  :mod:`repro.restrictions`;
* a **static-analysis subsystem** (CFGs, a forward-dataflow engine,
  flow-sensitive pivot escape analysis, modifies-list inference, lints,
  and the shared ``OLxxx`` diagnostics engine) — :mod:`repro.analysis`;
* a first-order **logic** layer (terms, formulas, NNF, skolemization) —
  :mod:`repro.logic`;
* a Simplify-style **theorem prover** (congruence closure, E-matching,
  DPLL-style case splitting) — :mod:`repro.prover`;
* **verification-condition generation** per the paper's Section 4 (wlp,
  background predicates, Init, owner exclusion) — :mod:`repro.vcgen`;
* an **operational semantics** with runtime monitors used to validate
  soundness empirically — :mod:`repro.semantics`;
* the **modular soundness** (scope monotonicity) experiment harness —
  :mod:`repro.modular`;
* a zero-dependency **telemetry layer** (span tracer over the pipeline's
  stage boundaries, prover metrics registry, Chrome-trace/metrics-JSON/
  text-profile exporters) — :mod:`repro.obs`;
* **baseline** checkers for comparison — :mod:`repro.baselines`;
* the paper's example programs and synthetic generators —
  :mod:`repro.corpus`.

Quickstart::

    from repro import check_program
    report = check_program('''
        group value
        field num in value
        field den in value
        proc normalize(r) modifies r.value
        impl normalize(r) { assume r != null ; r.num := 1 ; r.den := 1 }
    ''')
    assert report.ok
"""

__version__ = "1.0.0"

__all__ = [
    "CheckReport",
    "Diagnostic",
    "ImplVerdict",
    "LintResult",
    "Severity",
    "check_program",
    "check_scope",
    "lint_program",
    "lint_scope",
    "parse_program",
    "__version__",
]

_API_NAMES = (
    "CheckReport",
    "Diagnostic",
    "ImplVerdict",
    "LintResult",
    "Severity",
    "check_program",
    "check_scope",
    "lint_program",
    "lint_scope",
    "parse_program",
)


def __getattr__(name):
    """Lazily expose the high-level API without importing the prover eagerly."""
    if name in _API_NAMES:
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
