"""Interprocedural effect summaries and static frame-obligation discharge.

The prover's front door. Before any VC is generated, this pass walks
every implementation and classifies each of its proof obligations — the
same five obligation sites :mod:`repro.vcgen.wlp` registers, enumerated
in the same order with the same descriptions — by pure lattice reasoning
over the scope's inclusion relation (:class:`~repro.analysis.inclusion.
InclusionLattice`) and the access-path dataflow of
:mod:`repro.analysis.modifies`:

* ``STATIC_VALID`` — every value the written object may denote is either
  definitely fresh (``¬alive($0)`` holds) or an entry access path whose
  licence is subsumed in the lattice. The prover would prove it; skip it.
* ``STATIC_VIOLATION`` — the object is named by exactly one entry access
  path, its licence is *not* subsumed, and the path to it is refutation-
  safe (all assumptions on the way are trivial guards, no formal is
  reassigned, no field on the path is redirected). The prover would
  refute it; report OL401 with an inclusion-chain blame instead.
* ``UNKNOWN`` — anything else falls through to the prover unchanged.

Classification is deliberately conservative on the two places where the
static view and the wlp's store terms can drift apart:

* declared modifies prefixes are evaluated in the **entry** store while
  write targets are evaluated in the **current** store, so coverage
  through a non-empty access path is only claimed when every field on
  that path is *stable* — never heap-written in the body and not
  writable by any callee's frame (downward-closed through pivots);
* a ``STATIC_VIOLATION`` is only claimed when the obligation is provably
  reachable in some model — every ``assume`` in the body must be a
  trivial guard (``true``, ``e != null``, conjunctions thereof).

On top of the per-obligation classification the module computes
SCC-condensed **interprocedural effect summaries** (each procedure's
transitive, downward-closed write effect, a fixpoint over
:meth:`~repro.analysis.callgraph.CallGraph.sccs` that is sound for self
and mutual recursion) and a per-declaration **interface hash** for
future incremental checking. Summaries degrade to *opaque* — and strict
mode then refuses to discharge — whenever a write cannot be named: a
callee without implementations, an unknown actual, or an access path
beyond the widening cap.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import VerificationError
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Designator,
    Expr,
    FieldAccess,
    Id,
    ImplDecl,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    VarCmd,
)
from repro.oolong.pretty import pretty_decl
from repro.oolong.program import Scope
from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import build_cfg
from repro.analysis.dataflow import run_forward, statement_states
from repro.analysis.diagnostics import Diagnostic, Note
from repro.analysis.inclusion import InclusionLattice
from repro.analysis.modifies import (
    FRESH,
    UNKNOWN,
    AccessPathAnalysis,
    PathVal,
    PointsToState,
    eval_expr,
)
from repro.vcgen.wlp import ObligationInfo

#: Version of the discharge pass; folded into the parallel result-cache
#: key (see :func:`repro.parallel.cache.code_version`) so cached verdicts
#: never outlive a change in discharge semantics.
DISCHARGE_VERSION = 1

#: Access paths longer than this are widened to *opaque* during the
#: summary fixpoint — the cap that keeps recursive scopes finite.
MAX_SUMMARY_PATH = 4


class Outcome(enum.Enum):
    """The three-way verdict of the discharge pass."""

    STATIC_VALID = "static-valid"
    STATIC_VIOLATION = "static-violation"
    UNKNOWN = "unknown"


# ---------------------------------------------------------------------------
# Obligation enumeration (the static mirror of wlp registration)
# ---------------------------------------------------------------------------


@dataclass
class _Site:
    """One obligation plus the AST context needed to classify it."""

    info: ObligationInfo
    node: Cmd
    #: For call obligations: the callee declaration …
    callee: Optional[ProcDecl] = None
    #: … and the modifies-list entry being licensed (call-licence only).
    designator: Optional[Designator] = None


def _obligation_sites(
    scope: Scope, proc: ProcDecl, impl: ImplDecl
) -> List[_Site]:
    """Enumerate ``impl``'s obligations in wlp registration order.

    Must mirror :func:`repro.vcgen.wlp.wlp` exactly — same order, same
    kinds, same description strings — because ``--check-discharge``
    compares classifications against prover verdicts obligation by
    obligation. wlp registers while building the formula backwards, so a
    ``Seq`` registers its *second* command's obligations first.
    """
    sites: List[_Site] = []
    self_modifies = tuple(str(d) for d in proc.modifies)

    def add(kind: str, description: str, node: Cmd, **details) -> _Site:
        info = ObligationInfo(len(sites), kind, description, **details)
        site = _Site(info=info, node=node)
        sites.append(site)
        return site

    def emit(cmd: Cmd) -> None:
        if isinstance(cmd, (Assume, Skip)):
            return
        if isinstance(cmd, Assert):
            where = f"assert {cmd.condition}" + (
                f" at {cmd.position}" if cmd.position else ""
            )
            add(
                "assert",
                where,
                cmd,
                position=cmd.position,
                target=str(cmd.condition),
            )
            return
        if isinstance(cmd, VarCmd):
            emit(cmd.body)
            return
        if isinstance(cmd, Seq):
            emit(cmd.second)
            emit(cmd.first)
            return
        if isinstance(cmd, Choice):
            emit(cmd.left)
            emit(cmd.right)
            return
        if isinstance(cmd, Assign):
            if isinstance(cmd.target, FieldAccess):
                add(
                    "write-licence",
                    f"write to {cmd.target}"
                    + (f" at {cmd.position}" if cmd.position else ""),
                    cmd,
                    position=cmd.position,
                    target=str(cmd.target),
                    attr=cmd.target.attr,
                    modifies=self_modifies,
                )
            return
        if isinstance(cmd, AssignNew):
            if isinstance(cmd.target, FieldAccess):
                add(
                    "write-licence",
                    f"allocation into {cmd.target}"
                    + (f" at {cmd.position}" if cmd.position else ""),
                    cmd,
                    position=cmd.position,
                    target=str(cmd.target),
                    attr=cmd.target.attr,
                    modifies=self_modifies,
                )
            return
        if isinstance(cmd, Call):
            callee = scope.proc(cmd.proc)
            if callee is None:
                raise VerificationError(
                    f"call to undeclared procedure {cmd.proc!r}"
                )
            where = f"call {cmd.proc}" + (
                f" at {cmd.position}" if cmd.position else ""
            )
            for designator in callee.modifies:
                site = add(
                    "call-licence",
                    f"{where}: callee may modify {designator}",
                    cmd,
                    position=cmd.position,
                    target=str(designator),
                    attr=designator.attr,
                    modifies=self_modifies,
                    callee=cmd.proc,
                )
                site.callee = callee
                site.designator = designator
            if callee.modifies:
                for index, arg in enumerate(cmd.args):
                    site = add(
                        "owner-exclusion",
                        f"{where}: argument #{index + 1} ({arg})",
                        cmd,
                        position=cmd.position,
                        target=str(arg),
                        modifies=tuple(str(d) for d in callee.modifies),
                        callee=cmd.proc,
                        arg_index=index + 1,
                    )
                    site.callee = callee
            return
        raise VerificationError(f"cannot enumerate obligations for {cmd!r}")

    emit(impl.body)
    return sites


def enumerate_obligations(
    scope: Scope, proc: ProcDecl, impl: ImplDecl
) -> List[ObligationInfo]:
    """The obligations wlp would register for ``impl``, without building
    a single formula."""
    return [site.info for site in _obligation_sites(scope, proc, impl)]


# ---------------------------------------------------------------------------
# Refutation-safety gates
# ---------------------------------------------------------------------------


def _is_access_path(expr: Expr) -> bool:
    if isinstance(expr, Id):
        return True
    if isinstance(expr, FieldAccess):
        return _is_access_path(expr.obj)
    return False


def _trivial_guard(expr: Expr) -> bool:
    """Assumptions that cannot make the obligation context unsatisfiable:
    ``true``, ``e != null`` over an access path, and ``&&`` of those."""
    if isinstance(expr, BoolConst):
        return expr.value is True
    if isinstance(expr, BinOp):
        if expr.op == "&&":
            return _trivial_guard(expr.left) and _trivial_guard(expr.right)
        if expr.op == "!=":
            if isinstance(expr.right, NullConst):
                return _is_access_path(expr.left)
            if isinstance(expr.left, NullConst):
                return _is_access_path(expr.right)
    return False


def _walk_commands(cmd: Cmd):
    yield cmd
    if isinstance(cmd, Seq):
        yield from _walk_commands(cmd.first)
        yield from _walk_commands(cmd.second)
    elif isinstance(cmd, Choice):
        yield from _walk_commands(cmd.left)
        yield from _walk_commands(cmd.right)
    elif isinstance(cmd, VarCmd):
        yield from _walk_commands(cmd.body)


def _only_trivial_assumes(impl: ImplDecl) -> bool:
    for cmd in _walk_commands(impl.body):
        if isinstance(cmd, Assume) and not _trivial_guard(cmd.condition):
            return False
    return True


def _reassigns_formal(impl: ImplDecl) -> bool:
    formals = set(impl.params)
    for cmd in _walk_commands(impl.body):
        if isinstance(cmd, (Assign, AssignNew)):
            if isinstance(cmd.target, Id) and cmd.target.name in formals:
                return True
    return False


def _unstable_fields(
    scope: Scope, lattice: InclusionLattice, impl: ImplDecl
) -> FrozenSet[str]:
    """Fields the body (or any callee) may redirect. Coverage through an
    access path mentioning one of these cannot be trusted, because the
    declared modifies prefix is evaluated in the entry store while the
    write target is evaluated in the current store."""
    unstable = set()
    for cmd in _walk_commands(impl.body):
        if isinstance(cmd, (Assign, AssignNew)) and isinstance(
            cmd.target, FieldAccess
        ):
            unstable.add(cmd.target.attr)
        elif isinstance(cmd, Call):
            callee = scope.proc(cmd.proc)
            if callee is None:
                return frozenset(scope.attribute_names())
            unstable |= lattice.writable_fields(callee.modifies)
    return frozenset(unstable)


# ---------------------------------------------------------------------------
# Per-obligation classification
# ---------------------------------------------------------------------------


_COVERED = "covered"
_UNCOVERED = "uncovered"
_UNDECIDED = "undecided"


@dataclass
class ObligationDecision:
    """How the discharge pass classified one obligation."""

    obligation: ObligationInfo
    outcome: Outcome
    #: For violations: the uncovered location (as a formal-rooted
    #: designator) and the frame it was checked against.
    required: Optional[Designator] = None
    frame: Tuple[Designator, ...] = ()
    reason: str = ""

    def to_dict(self) -> dict:
        data = {
            "obligation": self.obligation.to_dict(),
            "outcome": self.outcome.value,
        }
        if self.required is not None:
            data["required"] = str(self.required)
        if self.reason:
            data["reason"] = self.reason
        return data


def _value_verdict(
    value,
    attr: str,
    frame: Tuple[Designator, ...],
    lattice: InclusionLattice,
    unstable: FrozenSet[str],
) -> Tuple[str, Optional[Designator]]:
    """Classify one abstract value a written object may denote."""
    if value is FRESH:
        # Definitely allocated after entry: ¬alive($0, X) discharges the
        # licence outright.
        return _COVERED, None
    if not isinstance(value, PathVal):
        return _UNDECIDED, None
    required = Designator(value.root, value.path, attr)
    if value.path and any(f in unstable for f in value.path):
        # The entry-store and current-store readings of this path may
        # diverge; neither coverage nor refutation is safe.
        return _UNDECIDED, required
    if lattice.covered_by_frame(frame, required):
        return _COVERED, required
    return _UNCOVERED, required


def _classify_mod(
    values,
    attr: str,
    frame: Tuple[Designator, ...],
    lattice: InclusionLattice,
    unstable: FrozenSet[str],
    refutation_safe: bool,
) -> Tuple[Outcome, Optional[Designator], str]:
    """Classify a ``mod(X·A, w, $0)`` obligation from the abstract values
    ``X`` may denote."""
    if not values:
        return Outcome.UNKNOWN, None, "target has no abstract value"
    verdicts = [
        _value_verdict(value, attr, frame, lattice, unstable)
        for value in values
    ]
    if all(verdict == _COVERED for verdict, _ in verdicts):
        return Outcome.STATIC_VALID, None, "all targets covered"
    if (
        len(verdicts) == 1
        and verdicts[0][0] == _UNCOVERED
        and refutation_safe
    ):
        return (
            Outcome.STATIC_VIOLATION,
            verdicts[0][1],
            "single uncovered target",
        )
    return Outcome.UNKNOWN, None, "coverage undecided"


class _ImplFacts:
    """The dataflow facts classification and summaries both consume."""

    def __init__(self, scope: Scope, impl: ImplDecl):
        cfg = build_cfg(impl)
        analysis = AccessPathAnalysis(impl)
        result = run_forward(cfg, analysis)
        self.analysis = analysis
        # A programmatic AST can reuse one node object in several CFG
        # statements; join the incoming states rather than keeping the
        # last one seen.
        states: Dict[int, PointsToState] = {}
        for _block, stmt, state in statement_states(cfg, analysis, result):
            if stmt.node is None:
                continue
            key = id(stmt.node)
            if key in states:
                states[key] = analysis.join([states[key], state])
            else:
                states[key] = state
        self.states = states

    def state_at(self, node: Cmd) -> Optional[PointsToState]:
        return self.states.get(id(node))


@dataclass
class ImplDischarge:
    """The discharge verdict for one implementation."""

    proc_name: str
    index: int
    outcome: Outcome
    decisions: List[ObligationDecision] = field(default_factory=list)
    #: The decision that refutes the implementation, for violations.
    blame: Optional[ObligationDecision] = None
    #: Why a would-be discharge was withheld (strict mode, crash, ...).
    reason: str = ""
    error: Optional[str] = None

    def counts(self) -> Dict[str, int]:
        tally = {outcome.value: 0 for outcome in Outcome}
        for decision in self.decisions:
            tally[decision.outcome.value] += 1
        return tally


def _discharge_impl(
    scope: Scope,
    lattice: InclusionLattice,
    proc: ProcDecl,
    impl: ImplDecl,
    index: int,
) -> ImplDischarge:
    sites = _obligation_sites(scope, proc, impl)
    facts = _ImplFacts(scope, impl)
    unstable = _unstable_fields(scope, lattice, impl)
    refutation_safe = _only_trivial_assumes(impl) and not _reassigns_formal(
        impl
    )
    has_pivots = bool(scope.all_rep_triples())
    frame = tuple(proc.modifies)

    decisions: List[ObligationDecision] = []
    for site in sites:
        decisions.append(
            _classify_site(
                site, facts, lattice, frame, unstable,
                refutation_safe, has_pivots,
            )
        )

    blame = next(
        (d for d in decisions if d.outcome is Outcome.STATIC_VIOLATION), None
    )
    if blame is not None:
        outcome = Outcome.STATIC_VIOLATION
    elif all(d.outcome is Outcome.STATIC_VALID for d in decisions):
        outcome = Outcome.STATIC_VALID
    else:
        outcome = Outcome.UNKNOWN
    return ImplDischarge(
        proc_name=impl.name,
        index=index,
        outcome=outcome,
        decisions=decisions,
        blame=blame,
    )


def _classify_site(
    site: _Site,
    facts: _ImplFacts,
    lattice: InclusionLattice,
    frame: Tuple[Designator, ...],
    unstable: FrozenSet[str],
    refutation_safe: bool,
    has_pivots: bool,
) -> ObligationDecision:
    info = site.info
    node = site.node
    if info.kind == "assert":
        assert isinstance(node, Assert)
        if isinstance(node.condition, BoolConst) and node.condition.value:
            return ObligationDecision(info, Outcome.STATIC_VALID, frame=frame)
        return ObligationDecision(
            info, Outcome.UNKNOWN, frame=frame, reason="non-trivial assert"
        )
    if info.kind == "owner-exclusion":
        # ownExcl is trivially true when the scope declares no rep
        # inclusions (no pivot can place an argument inside a rep).
        if not has_pivots:
            return ObligationDecision(info, Outcome.STATIC_VALID, frame=frame)
        return ObligationDecision(
            info, Outcome.UNKNOWN, frame=frame, reason="scope has pivots"
        )
    state = facts.state_at(node)
    if state is None:
        return ObligationDecision(
            info, Outcome.UNKNOWN, frame=frame, reason="no dataflow state"
        )
    if info.kind == "write-licence":
        assert isinstance(node, (Assign, AssignNew))
        assert isinstance(node.target, FieldAccess)
        values = eval_expr(node.target.obj, state)
        outcome, required, reason = _classify_mod(
            values, node.target.attr, frame, lattice, unstable,
            refutation_safe,
        )
        return ObligationDecision(info, outcome, required, frame, reason)
    if info.kind == "call-licence":
        assert isinstance(node, Call)
        callee = site.callee
        designator = site.designator
        actuals = dict(zip(callee.params, node.args))
        actual = actuals.get(designator.root)
        if actual is None:
            return ObligationDecision(
                info, Outcome.UNKNOWN, frame=frame, reason="unbound root"
            )
        # The licence is on the *owner* the callee's designator denotes:
        # the actual extended by the designator's pivot path, evaluated
        # at the call site.
        owner: Expr = actual
        for field_name in designator.path:
            owner = FieldAccess(owner, field_name)
        values = eval_expr(owner, state)
        outcome, required, reason = _classify_mod(
            values, designator.attr, frame, lattice, unstable,
            refutation_safe,
        )
        return ObligationDecision(info, outcome, required, frame, reason)
    return ObligationDecision(
        info, Outcome.UNKNOWN, frame=frame, reason=f"kind {info.kind!r}"
    )


# ---------------------------------------------------------------------------
# Interprocedural effect summaries (SCC fixpoint)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class EffectSummary:
    """A procedure's transitive write effect on entry-reachable state.

    ``writes`` are formal-rooted designators; ``opaque`` means some write
    could not be named (missing implementation, unknown target, widened
    path) and the true effect may be larger.
    """

    writes: FrozenSet[Designator] = frozenset()
    opaque: bool = False

    def render(self) -> Tuple[str, ...]:
        return tuple(sorted(str(d) for d in self.writes))


def _impl_effect(
    scope: Scope,
    impl: ImplDecl,
    facts: _ImplFacts,
    summaries: Dict[str, EffectSummary],
) -> EffectSummary:
    writes = set()
    opaque = False

    def record(value, path_suffix: Tuple[str, ...], attr: str) -> None:
        nonlocal opaque
        if value is FRESH:
            return  # writes inside fresh objects are invisible at entry
        if not isinstance(value, PathVal):
            opaque = True
            return
        path = value.path + path_suffix
        if len(path) > MAX_SUMMARY_PATH:
            opaque = True  # widen instead of diverging on recursion
            return
        writes.add(Designator(value.root, path, attr))

    for cmd in _walk_commands(impl.body):
        state = facts.state_at(cmd)
        if isinstance(cmd, (Assign, AssignNew)) and isinstance(
            cmd.target, FieldAccess
        ):
            if state is None:
                opaque = True
                continue
            for value in eval_expr(cmd.target.obj, state):
                record(value, (), cmd.target.attr)
        elif isinstance(cmd, Call):
            callee = scope.proc(cmd.proc)
            summary = summaries.get(cmd.proc)
            if callee is None or summary is None or state is None:
                opaque = True
                continue
            if summary.opaque:
                opaque = True
            actuals = dict(zip(callee.params, cmd.args))
            for designator in summary.writes:
                actual = actuals.get(designator.root)
                if actual is None:
                    opaque = True
                    continue
                for value in eval_expr(actual, state):
                    record(value, designator.path, designator.attr)
    return EffectSummary(frozenset(writes), opaque)


def compute_summaries(
    scope: Scope, graph: Optional[CallGraph] = None
) -> Dict[str, EffectSummary]:
    """Every procedure's transitive write effect, by fixpoint over the
    condensed call graph (callees first; components iterate until their
    members stabilise, which self/mutual recursion needs)."""
    graph = graph or CallGraph(scope)
    impl_facts: Dict[Tuple[str, int], Tuple[ImplDecl, _ImplFacts]] = {}
    for proc_name, impls in scope.impls.items():
        for index, impl in enumerate(impls):
            impl_facts[(proc_name, index)] = (impl, _ImplFacts(scope, impl))

    summaries: Dict[str, EffectSummary] = {}
    for component in graph.sccs():
        for name in component:
            if not scope.impls_of(name):
                # No implementation to analyse: the effect is unknown.
                summaries[name] = EffectSummary(frozenset(), opaque=True)
            else:
                summaries[name] = EffectSummary()
        changed = True
        while changed:
            changed = False
            for name in component:
                if not scope.impls_of(name):
                    continue
                merged = set()
                opaque = False
                for index, impl in enumerate(scope.impls_of(name)):
                    _, facts = impl_facts[(name, index)]
                    effect = _impl_effect(scope, impl, facts, summaries)
                    merged |= effect.writes
                    opaque = opaque or effect.opaque
                candidate = EffectSummary(frozenset(merged), opaque)
                if candidate != summaries[name]:
                    summaries[name] = candidate
                    changed = True
    return summaries


# ---------------------------------------------------------------------------
# Interface hashes (for incremental checking)
# ---------------------------------------------------------------------------


def interface_hashes(
    scope: Scope, summaries: Optional[Dict[str, EffectSummary]] = None
) -> Dict[str, str]:
    """A stable per-declaration digest of everything a *caller* can
    observe: the pretty-printed declaration, its place in the inclusion
    relation, and (for procedures) the computed effect summary. Two
    scopes agreeing on a declaration's hash can reuse verdicts that only
    depend on that declaration's interface."""
    if summaries is None:
        summaries = compute_summaries(scope)
    lattice = InclusionLattice(scope)
    hashes: Dict[str, str] = {}

    def digest(*parts: str) -> str:
        payload = "\x00".join(parts).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    for name, decl in scope.groups.items():
        hashes[name] = digest(
            "group", pretty_decl(decl), *sorted(lattice.downward(name))
        )
    for name, decl in scope.fields.items():
        reps = [f"{g}->{m}" for g, m in sorted(scope.rep_pairs(name))]
        hashes[name] = digest(
            "field",
            pretty_decl(decl),
            *(sorted(scope.enclosing_groups(name)) + reps),
        )
    for name, decl in scope.procs.items():
        summary = summaries.get(name, EffectSummary(opaque=True))
        hashes[name] = digest(
            "proc",
            pretty_decl(decl),
            "opaque" if summary.opaque else "exact",
            *summary.render(),
        )
    return hashes


def scope_interface_hash(
    scope: Scope, summaries: Optional[Dict[str, EffectSummary]] = None
) -> str:
    """One digest for the whole scope's interface."""
    hashes = interface_hashes(scope, summaries)
    payload = "\x00".join(
        f"{name}={value}" for name, value in sorted(hashes.items())
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# The scope-level pass
# ---------------------------------------------------------------------------


@dataclass
class DischargeResult:
    """Everything the discharge pass computed for one scope."""

    mode: str
    impls: Dict[Tuple[str, int], ImplDischarge]
    summaries: Dict[str, EffectSummary]
    lattice: InclusionLattice
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def outcome_of(self, proc_name: str, index: int) -> Outcome:
        entry = self.impls.get((proc_name, index))
        return entry.outcome if entry is not None else Outcome.UNKNOWN

    def obligation_counts(self) -> Dict[str, int]:
        tally = {outcome.value: 0 for outcome in Outcome}
        for entry in self.impls.values():
            if entry.outcome is Outcome.UNKNOWN:
                # The whole implementation goes to the prover; none of
                # its obligations are discharged, whatever their
                # individual classification said.
                tally[Outcome.UNKNOWN.value] += len(entry.decisions)
            else:
                for decision in entry.decisions:
                    tally[decision.outcome.value] += 1
        return tally

    def impl_counts(self) -> Dict[str, int]:
        tally = {outcome.value: 0 for outcome in Outcome}
        for entry in self.impls.values():
            tally[entry.outcome.value] += 1
        return tally

    def summary_dict(self) -> dict:
        obligations = self.obligation_counts()
        impls = self.impl_counts()
        total = sum(obligations.values())
        discharged = (
            obligations[Outcome.STATIC_VALID.value]
            + obligations[Outcome.STATIC_VIOLATION.value]
        )
        return {
            "mode": self.mode,
            "obligations": obligations,
            "impls": impls,
            "obligations_total": total,
            "discharge_rate": (discharged / total) if total else 0.0,
        }


def _blame_notes(
    scope: Scope, decision: ObligationDecision
) -> Tuple[Note, ...]:
    """Why no declared designator licenses the required location — one
    note per modifies entry, with the inclusion chain that *does* exist
    from its attribute (via :func:`repro.obs.explain.inclusion_chain`)
    when the failure is a path/root mismatch rather than a missing
    chain."""
    from repro.obs.explain import inclusion_chain

    required = decision.required
    notes: List[Note] = []
    if not decision.frame:
        notes.append(Note("the declared modifies list is empty"))
        return tuple(notes)
    for declared in decision.frame:
        if declared.root != required.root:
            notes.append(
                Note(
                    f"modifies {declared} is rooted at {declared.root!r} "
                    f"and cannot license {required}"
                )
            )
            continue
        chain = inclusion_chain(scope, declared.attr, required.attr)
        if chain is None:
            notes.append(
                Note(
                    f"modifies {declared}: no declared inclusion chain "
                    f"from {declared.attr!r} down to {required.attr!r}"
                )
            )
        else:
            notes.append(
                Note(
                    f"modifies {declared}: the chain {chain} does not "
                    f"apply along the access path of {required}"
                )
            )
    return tuple(notes)


def violation_diagnostic(
    scope: Scope, entry: ImplDischarge, decision: ObligationDecision
) -> Diagnostic:
    """The OL401 finding for a statically refuted obligation."""
    info = decision.obligation
    return Diagnostic(
        code="OL401",
        message=(
            f"{info.description}: requires a licence on "
            f"{decision.required}, which the declared modifies list "
            f"({', '.join(str(d) for d in decision.frame) or 'empty'}) "
            f"does not grant"
        ),
        position=info.position,
        impl=entry.proc_name,
        notes=_blame_notes(scope, decision),
    )


def discharge_scope(scope: Scope, mode: str = "on") -> DischargeResult:
    """Classify every obligation of every implementation in ``scope``.

    ``mode="strict"`` additionally withholds ``STATIC_VALID`` from any
    implementation whose own effect summary is opaque or exceeds its
    declared frame, and reports the deferral as OL403 (info).
    """
    if mode not in ("on", "strict"):
        raise ValueError(f"unknown discharge mode {mode!r}")
    lattice = InclusionLattice(scope)
    graph = CallGraph(scope)
    summaries = compute_summaries(scope, graph)
    result = DischargeResult(
        mode=mode, impls={}, summaries=summaries, lattice=lattice
    )
    for proc_name, impls in scope.impls.items():
        proc = scope.proc(proc_name)
        for index, impl in enumerate(impls):
            if proc is None:
                entry = ImplDischarge(
                    proc_name=impl.name,
                    index=index,
                    outcome=Outcome.UNKNOWN,
                    reason="undeclared procedure",
                )
            else:
                try:
                    entry = _discharge_impl(scope, lattice, proc, impl, index)
                except Exception as exc:  # never let the pass kill a check
                    entry = ImplDischarge(
                        proc_name=impl.name,
                        index=index,
                        outcome=Outcome.UNKNOWN,
                        reason="discharge failed",
                        error=f"{type(exc).__name__}: {exc}",
                    )
            if mode == "strict" and entry.outcome is Outcome.STATIC_VALID:
                reason = _strict_block_reason(
                    scope, lattice, summaries, proc, impl
                )
                if reason is not None:
                    entry.outcome = Outcome.UNKNOWN
                    entry.reason = reason
                    result.diagnostics.append(
                        Diagnostic(
                            code="OL403",
                            message=(
                                f"{len(entry.decisions)} obligation(s) of "
                                f"{impl.name!r} deferred to the prover: "
                                f"{reason}"
                            ),
                            position=impl.position,
                            impl=impl.name,
                        )
                    )
            result.impls[(proc_name, index)] = entry
    return result


def _strict_block_reason(
    scope: Scope,
    lattice: InclusionLattice,
    summaries: Dict[str, EffectSummary],
    proc: ProcDecl,
    impl: ImplDecl,
) -> Optional[str]:
    """Strict mode: a discharged implementation must also have an exact
    effect summary contained in its declared frame."""
    summary = summaries.get(proc.name)
    if summary is None or summary.opaque:
        return "effect summary is opaque"
    for written in summary.writes:
        if not lattice.covered_by_frame(proc.modifies, written):
            return f"summary effect {written} exceeds the declared frame"
    return None
