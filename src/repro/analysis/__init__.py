"""Static analysis over oolong programs: CFGs, dataflow, lints, inference.

The subsystem layers:

* :mod:`repro.analysis.diagnostics` — the shared diagnostics engine
  (stable ``OLxxx`` codes, severities, spans, text/JSON renderers);
* :mod:`repro.analysis.cfg` — basic-block CFGs over oolong commands;
* :mod:`repro.analysis.dataflow` — a generic forward fixpoint engine;
* :mod:`repro.analysis.escape` — flow-sensitive pivot escape analysis;
* :mod:`repro.analysis.modifies` — modifies-list inference;
* :mod:`repro.analysis.callgraph` — call graph + recursion detection;
* :mod:`repro.analysis.lints` — unused declarations, unreachable code;
* :mod:`repro.analysis.engine` — the ``lint_scope`` driver.

Heavier submodules are imported lazily so that modules lower in the
dependency graph (e.g. the restriction checker) can import
``repro.analysis.diagnostics`` without cycles.
"""

from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Note,
    Severity,
    code_for_rule,
    render_json,
    render_text,
    rule_for_code,
    sorted_diagnostics,
)

__all__ = [
    "CODES",
    "CallGraph",
    "Diagnostic",
    "LintResult",
    "Note",
    "Severity",
    "build_cfg",
    "code_for_rule",
    "check_pivot_escapes",
    "infer_modifies",
    "lint_program",
    "lint_scope",
    "render_json",
    "render_text",
    "rule_for_code",
    "run_forward",
    "sorted_diagnostics",
]

_LAZY = {
    "CallGraph": ("repro.analysis.callgraph", "CallGraph"),
    "LintResult": ("repro.analysis.engine", "LintResult"),
    "build_cfg": ("repro.analysis.cfg", "build_cfg"),
    "check_pivot_escapes": ("repro.analysis.escape", "check_pivot_escapes"),
    "infer_modifies": ("repro.analysis.modifies", "infer_modifies"),
    "lint_program": ("repro.analysis.engine", "lint_program"),
    "lint_scope": ("repro.analysis.engine", "lint_scope"),
    "run_forward": ("repro.analysis.dataflow", "run_forward"),
}


def __getattr__(name):
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        return getattr(importlib.import_module(module_name), attr)
    raise AttributeError(f"module 'repro.analysis' has no attribute {name!r}")
