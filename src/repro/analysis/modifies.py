"""Modifies-list inference (codes ``OL301`` / ``OL302``).

For every implementation the pass computes the *least modifies list* its
writes and callee licences justify, by abstract interpretation over the
CFG. The state has two components:

* a may-points-to map from each local to the objects it may denote —
  ``FRESH`` (allocated here; writes to fresh objects never need a
  licence, matching the paper's semantics), an *access path*
  ``root.f1...fn`` rooted at a formal parameter, or ``UNKNOWN`` (a value
  the analysis cannot name; requirements through it are skipped rather
  than guessed);
* a must-fresh set of heap paths: after ``t.c := new()`` the location
  ``t.c`` definitely holds a fresh object, so a later ``t.c.d := 1``
  needs no licence. Must-facts join by intersection and are killed
  conservatively by any write that could redirect the path and by calls.

The inferred requirements are compared against the declared modifies list
using the paper's licence semantics — local inclusions (``group ≽ attr``)
plus rep inclusions through pivot fields (``g —p→ x``) — and two kinds of
diagnostics come out:

* **OL301** (error): a write or callee licence is not covered by the
  declaration. These are the implementations the prover will refuse, so
  the lint is a fast pre-filter in front of verification.
* **OL302** (warning): a declared designator that no implementation of
  the procedure ever exercises — an over-broad frame that can be
  removed (reported once per procedure, naming the removable group).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import SourcePosition
from repro.oolong.ast import Call, Designator, Expr, FieldAccess, Id, ImplDecl
from repro.oolong.program import Scope
from repro.analysis.cfg import ASSIGN, ASSIGN_NEW, CALL, VAR_ENTER, VAR_EXIT, Statement, build_cfg
from repro.analysis.dataflow import ForwardAnalysis, run_forward, statement_states
from repro.analysis.diagnostics import Diagnostic


class _Fresh:
    def __repr__(self) -> str:
        return "FRESH"


class _Unknown:
    def __repr__(self) -> str:
        return "UNKNOWN"


FRESH = _Fresh()
UNKNOWN = _Unknown()


@dataclass(frozen=True)
class PathVal:
    """An object named by an access path rooted at a formal parameter."""

    root: str
    path: Tuple[str, ...] = ()

    def extend(self, field_name: str) -> "PathVal":
        return PathVal(self.root, self.path + (field_name,))

    def __str__(self) -> str:
        return ".".join((self.root,) + self.path)


AbstractValue = object  # FRESH | UNKNOWN | PathVal


@dataclass(frozen=True)
class PointsToState:
    """(may-points-to for locals, must-fresh heap paths)."""

    locals: Tuple[Tuple[str, FrozenSet[AbstractValue]], ...]
    fresh: FrozenSet[PathVal] = frozenset()

    @classmethod
    def make(cls, locals_map: Dict[str, FrozenSet[AbstractValue]], fresh) -> "PointsToState":
        return cls(tuple(sorted(locals_map.items(), key=lambda kv: kv[0])), frozenset(fresh))

    def locals_map(self) -> Dict[str, FrozenSet[AbstractValue]]:
        return dict(self.locals)


@dataclass(frozen=True)
class Requirement:
    """One licence an implementation needs: permission on ``designator``."""

    designator: Designator
    reason: str
    position: Optional[SourcePosition] = None


def eval_expr(expr: Expr, state: PointsToState) -> FrozenSet[AbstractValue]:
    """The abstract objects ``expr`` may denote."""
    if isinstance(expr, Id):
        return state.locals_map().get(expr.name, frozenset({UNKNOWN}))
    if isinstance(expr, FieldAccess):
        values: Set[AbstractValue] = set()
        for base in eval_expr(expr.obj, state):
            if isinstance(base, PathVal):
                extended = base.extend(expr.attr)
                values.add(FRESH if extended in state.fresh else extended)
            else:
                # Reading out of a fresh or unknown object yields a value
                # the analysis cannot name.
                values.add(UNKNOWN)
        return frozenset(values)
    # Constants and operator results are not writable objects.
    return frozenset()


class AccessPathAnalysis(ForwardAnalysis):
    """Tracks which objects each local may denote and which heap paths
    are definitely fresh."""

    def __init__(self, impl: ImplDecl):
        self.impl = impl

    def initial_state(self, cfg) -> PointsToState:
        return PointsToState.make(
            {param: frozenset({PathVal(param)}) for param in self.impl.params},
            frozenset(),
        )

    def join(self, states: List[PointsToState]) -> PointsToState:
        merged: Dict[str, FrozenSet[AbstractValue]] = {}
        for state in states:
            for var, values in state.locals:
                merged[var] = merged.get(var, frozenset()) | values
        fresh = states[0].fresh
        for state in states[1:]:
            fresh = fresh & state.fresh
        return PointsToState.make(merged, fresh)

    def transfer(self, stmt: Statement, state: PointsToState) -> PointsToState:
        if stmt.kind == VAR_ENTER:
            locals_map = state.locals_map()
            locals_map[stmt.var] = frozenset({UNKNOWN})
            return PointsToState.make(locals_map, state.fresh)
        if stmt.kind == VAR_EXIT:
            locals_map = state.locals_map()
            locals_map.pop(stmt.var, None)
            return PointsToState.make(locals_map, state.fresh)
        if stmt.kind == ASSIGN_NEW:
            node = stmt.node
            if isinstance(node.target, Id):
                locals_map = state.locals_map()
                locals_map[node.target.name] = frozenset({FRESH})
                return PointsToState.make(locals_map, state.fresh)
            # e.f := new(): the location e.f now definitely holds a fresh
            # object (on this path).
            fresh = set(self._kill_field(state.fresh, node.target.attr))
            for base in eval_expr(node.target.obj, state):
                if isinstance(base, PathVal):
                    fresh.add(base.extend(node.target.attr))
            return PointsToState.make(state.locals_map(), fresh)
        if stmt.kind == ASSIGN:
            node = stmt.node
            if isinstance(node.target, Id):
                locals_map = state.locals_map()
                locals_map[node.target.name] = eval_expr(node.rhs, state)
                return PointsToState.make(locals_map, state.fresh)
            # A heap write through field f may redirect any fresh path
            # mentioning f (aliasing is not tracked): kill them.
            return PointsToState.make(
                state.locals_map(),
                self._kill_field(state.fresh, node.target.attr),
            )
        if stmt.kind == CALL:
            # A callee may reassign any field it is licensed on; drop all
            # must-fresh facts rather than model callee frames.
            return PointsToState.make(state.locals_map(), frozenset())
        return state

    @staticmethod
    def _kill_field(fresh: FrozenSet[PathVal], field_name: str) -> FrozenSet[PathVal]:
        return frozenset(p for p in fresh if field_name not in p.path)

    # -- requirement extraction ---------------------------------------------

    def requirements_of(
        self, scope: Scope, stmt: Statement, state: PointsToState
    ) -> List[Requirement]:
        """The licences ``stmt`` demands, given the current points-to state."""
        node = stmt.node
        requirements: List[Requirement] = []
        if stmt.kind in (ASSIGN, ASSIGN_NEW) and isinstance(
            node.target, FieldAccess
        ):
            for value in eval_expr(node.target.obj, state):
                if isinstance(value, PathVal):
                    requirements.append(
                        Requirement(
                            Designator(value.root, value.path, node.target.attr),
                            reason=f"write to {node.target}",
                            position=node.position,
                        )
                    )
        elif stmt.kind == CALL:
            assert isinstance(node, Call)
            proc = scope.proc(node.proc)
            if proc is None:
                return requirements
            actuals = dict(zip(proc.params, node.args))
            for designator in proc.modifies:
                actual = actuals.get(designator.root)
                if actual is None:
                    continue
                for value in eval_expr(actual, state):
                    if isinstance(value, PathVal):
                        requirements.append(
                            Requirement(
                                Designator(
                                    value.root,
                                    value.path + designator.path,
                                    designator.attr,
                                ),
                                reason=(
                                    f"call to {node.proc} (modifies "
                                    f"{designator})"
                                ),
                                position=node.position,
                            )
                        )
        return requirements


# ---------------------------------------------------------------------------
# Licence coverage (the static mirror of semantics.inclusion)
# ---------------------------------------------------------------------------


def _closure(scope: Scope, groups: Set[str]) -> Set[str]:
    """All attributes locally included (``≽``) in any of ``groups``."""
    covered: Set[str] = set()
    for attr in scope.attribute_names():
        for group in groups:
            if scope.local_includes(group, attr):
                covered.add(attr)
                break
    return covered


def covers(scope: Scope, declared: Designator, required: Designator) -> bool:
    """Does the licence ``declared`` imply the licence ``required``?

    ``declared = r.p1...pk.a`` covers ``required = r.p1...pk.q1...qm.b``
    when stepping the attribute set from ``a`` through the rep inclusions
    of the pivot fields ``q1...qm`` still locally includes ``b``.
    """
    if declared.root != required.root:
        return False
    if len(declared.path) > len(required.path):
        return False
    if tuple(required.path[: len(declared.path)]) != tuple(declared.path):
        return False
    rest = required.path[len(declared.path):]
    attrs = _closure(scope, {declared.attr})
    for field_name in rest:
        stepped = {
            mapped
            for group, mapped in scope.rep_pairs(field_name)
            if group in attrs
        }
        if not stepped:
            return False
        attrs = _closure(scope, stepped)
    return required.attr in attrs


# ---------------------------------------------------------------------------
# The pass
# ---------------------------------------------------------------------------


@dataclass
class ModifiesInference:
    """Everything the inference pass computed."""

    #: proc name -> the least modifies list its implementations justify,
    #: as sorted designator strings.
    inferred: Dict[str, Tuple[str, ...]]
    diagnostics: List[Diagnostic]


def impl_requirements(scope: Scope, impl: ImplDecl) -> List[Requirement]:
    """All licences ``impl`` needs, via the access-path dataflow."""
    cfg = build_cfg(impl)
    analysis = AccessPathAnalysis(impl)
    result = run_forward(cfg, analysis)
    requirements: List[Requirement] = []
    for _block, stmt, state in statement_states(cfg, analysis, result):
        requirements.extend(analysis.requirements_of(scope, stmt, state))
    return requirements


def infer_modifies(scope: Scope) -> ModifiesInference:
    """Infer least modifies lists and diff them against the declarations."""
    diagnostics: List[Diagnostic] = []
    inferred: Dict[str, Tuple[str, ...]] = {}
    per_proc_requirements: Dict[str, List[Requirement]] = {}

    for proc_name, impls in scope.impls.items():
        proc = scope.proc(proc_name)
        if proc is None:
            continue  # undeclared; well-formedness reports it
        collected: List[Requirement] = []
        for impl in impls:
            impl_reqs = impl_requirements(scope, impl)
            collected.extend(impl_reqs)
            for requirement in impl_reqs:
                if not any(
                    covers(scope, declared, requirement.designator)
                    for declared in proc.modifies
                ):
                    diagnostics.append(
                        Diagnostic(
                            code="OL301",
                            message=(
                                f"{requirement.reason} requires a licence on "
                                f"{requirement.designator}, which the declared "
                                f"modifies list of {proc_name!r} does not grant"
                            ),
                            position=requirement.position,
                            impl=impl.name,
                        )
                    )
        per_proc_requirements[proc_name] = collected
        inferred[proc_name] = tuple(
            sorted({str(r.designator) for r in collected})
        )

    # Over-broad declarations: a designator no implementation exercises.
    for proc_name, requirements in per_proc_requirements.items():
        proc = scope.proc(proc_name)
        for declared in proc.modifies:
            if not any(
                covers(scope, declared, requirement.designator)
                for requirement in requirements
            ):
                diagnostics.append(
                    Diagnostic(
                        code="OL302",
                        message=(
                            f"modifies {declared} of {proc_name!r} is never "
                            f"exercised by any implementation; the "
                            f"{'group' if scope.is_group(declared.attr) else 'field'} "
                            f"{declared.attr!r} can be removed from the list"
                        ),
                        position=proc.position,
                        impl=proc_name,
                    )
                )
    return ModifiesInference(inferred=inferred, diagnostics=diagnostics)
