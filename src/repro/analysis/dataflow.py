"""A generic forward-dataflow fixpoint engine over :mod:`analysis.cfg` CFGs.

An analysis supplies an initial state for the entry block, a join for
confluence points, and a per-statement transfer function. The engine runs
a worklist to a fixpoint (oolong CFGs are DAGs, so one reverse-postorder
sweep converges, but the worklist keeps the engine correct for any edge
structure a future lowering might produce) and exposes both block-level
in/out states and a per-statement replay used by reporting passes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.analysis.cfg import CFG, BasicBlock, Statement


class ForwardAnalysis:
    """Interface of a forward dataflow problem. Subclass and override."""

    def initial_state(self, cfg: CFG) -> Any:
        """The state on entry to the CFG."""
        raise NotImplementedError

    def join(self, states: List[Any]) -> Any:
        """Combine the out-states of all predecessors (len >= 1)."""
        raise NotImplementedError

    def transfer(self, stmt: Statement, state: Any) -> Any:
        """The state after executing ``stmt`` in ``state``."""
        raise NotImplementedError

    def equal(self, left: Any, right: Any) -> bool:
        return left == right


@dataclass
class DataflowResult:
    """Fixpoint states per block."""

    block_in: Dict[int, Any]
    block_out: Dict[int, Any]


def run_forward(cfg: CFG, analysis: ForwardAnalysis) -> DataflowResult:
    """Run ``analysis`` over ``cfg`` to a fixpoint."""
    block_in: Dict[int, Any] = {}
    block_out: Dict[int, Any] = {}
    rpo = cfg.reverse_postorder()
    rpo_index = {bid: index for index, bid in enumerate(rpo)}

    block_in[cfg.entry] = analysis.initial_state(cfg)
    worklist = deque(rpo)
    queued = set(worklist)
    while worklist:
        bid = worklist.popleft()
        queued.discard(bid)
        block = cfg.block(bid)
        if bid != cfg.entry:
            pred_outs = [
                block_out[p] for p in block.preds if p in block_out
            ]
            if not pred_outs:
                continue  # not yet reachable in this sweep
            in_state = analysis.join(pred_outs)
            if bid in block_in and analysis.equal(block_in[bid], in_state):
                if bid in block_out:
                    continue
            block_in[bid] = in_state
        state = block_in[bid]
        for stmt in block.stmts:
            state = analysis.transfer(stmt, state)
        if bid in block_out and analysis.equal(block_out[bid], state):
            continue
        block_out[bid] = state
        for succ in block.succs:
            if succ not in queued:
                worklist.append(succ)
                queued.add(succ)
    return DataflowResult(block_in=block_in, block_out=block_out)


def statement_states(
    cfg: CFG, analysis: ForwardAnalysis, result: DataflowResult
) -> Iterator[Tuple[BasicBlock, Statement, Any]]:
    """Replay the fixpoint: yield every statement with its *in* state, in
    reverse-postorder. Reporting passes consume this to emit diagnostics
    exactly once per program point."""
    for bid in cfg.reverse_postorder():
        if bid not in result.block_in:
            continue
        block = cfg.block(bid)
        state = result.block_in[bid]
        for stmt in block.stmts:
            yield block, stmt, state
            state = analysis.transfer(stmt, state)
