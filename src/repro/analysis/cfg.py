"""Control-flow graphs over oolong commands.

Oolong commands are structured (``Seq``/``Choice``/``VarCmd``; recursion
only through calls), so the per-implementation CFG is a DAG of basic
blocks. The builder desugars the command tree:

* atoms (``assert``/``assume``/``:=``/``new()``/calls/``skip``) append a
  :class:`Statement` to the current block;
* ``C ; D`` lowers ``C`` then continues lowering ``D`` from wherever
  control ended up;
* ``C [] D`` ends the current block, lowers each arm into a fresh block,
  and joins both arms in a fresh join block;
* ``var x in C end`` brackets the body with ``var-enter``/``var-exit``
  pseudo-statements so scoped analyses can bind and kill ``x``.

Every block is reachable by construction; the *semantic* reachability
lint (``assume false`` making the rest of a path dead) is a dataflow
instance, not a graph property.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import SourcePosition
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    Call,
    Choice,
    Cmd,
    ImplDecl,
    Seq,
    Skip,
    VarCmd,
)

#: Statement kinds (``node`` is the originating AST atom where one exists).
ASSERT = "assert"
ASSUME = "assume"
ASSIGN = "assign"
ASSIGN_NEW = "assign-new"
CALL = "call"
VAR_ENTER = "var-enter"
VAR_EXIT = "var-exit"


@dataclass(frozen=True)
class Statement:
    """One atomic step inside a basic block."""

    kind: str
    node: Optional[Cmd] = None
    var: Optional[str] = None  # for var-enter / var-exit

    @property
    def position(self) -> Optional[SourcePosition]:
        return getattr(self.node, "position", None)

    def __str__(self) -> str:
        if self.kind in (VAR_ENTER, VAR_EXIT):
            return f"{self.kind} {self.var}"
        return f"{self.kind} {self.node}"


@dataclass
class BasicBlock:
    """A maximal straight-line sequence of statements."""

    bid: int
    stmts: List[Statement] = field(default_factory=list)
    succs: List[int] = field(default_factory=list)
    preds: List[int] = field(default_factory=list)


class CFG:
    """The control-flow graph of one implementation body."""

    def __init__(self, blocks: List[BasicBlock], entry: int, exit: int):
        self.blocks: Dict[int, BasicBlock] = {b.bid: b for b in blocks}
        self.entry = entry
        self.exit = exit

    def block(self, bid: int) -> BasicBlock:
        return self.blocks[bid]

    def __len__(self) -> int:
        return len(self.blocks)

    def statements(self) -> Iterator[Tuple[BasicBlock, Statement]]:
        """Every statement, in reverse-postorder block order."""
        for bid in self.reverse_postorder():
            block = self.blocks[bid]
            for stmt in block.stmts:
                yield block, stmt

    def reverse_postorder(self) -> List[int]:
        """Blocks in reverse postorder from the entry (topological: the
        graph is a DAG, so every predecessor precedes its successors)."""
        seen = set()
        order: List[int] = []

        def visit(bid: int) -> None:
            seen.add(bid)
            for succ in self.blocks[bid].succs:
                if succ not in seen:
                    visit(succ)
            order.append(bid)

        visit(self.entry)
        # Unreached blocks cannot exist by construction, but stay safe.
        for bid in self.blocks:
            if bid not in seen:
                order.insert(0, bid)
        return list(reversed(order))


class _Builder:
    def __init__(self):
        self._blocks: List[BasicBlock] = []

    def new_block(self) -> BasicBlock:
        block = BasicBlock(bid=len(self._blocks))
        self._blocks.append(block)
        return block

    def edge(self, src: BasicBlock, dst: BasicBlock) -> None:
        src.succs.append(dst.bid)
        dst.preds.append(src.bid)

    def lower(self, cmd: Cmd, current: BasicBlock) -> BasicBlock:
        """Lower ``cmd`` starting in ``current``; return the block where
        control continues afterwards."""
        if isinstance(cmd, Seq):
            after_first = self.lower(cmd.first, current)
            return self.lower(cmd.second, after_first)
        if isinstance(cmd, Choice):
            left_entry = self.new_block()
            right_entry = self.new_block()
            self.edge(current, left_entry)
            self.edge(current, right_entry)
            left_end = self.lower(cmd.left, left_entry)
            right_end = self.lower(cmd.right, right_entry)
            join = self.new_block()
            self.edge(left_end, join)
            self.edge(right_end, join)
            return join
        if isinstance(cmd, VarCmd):
            current.stmts.append(Statement(VAR_ENTER, cmd, cmd.name))
            after_body = self.lower(cmd.body, current)
            after_body.stmts.append(Statement(VAR_EXIT, cmd, cmd.name))
            return after_body
        if isinstance(cmd, Skip):
            return current
        if isinstance(cmd, Assert):
            current.stmts.append(Statement(ASSERT, cmd))
            return current
        if isinstance(cmd, Assume):
            current.stmts.append(Statement(ASSUME, cmd))
            return current
        if isinstance(cmd, Assign):
            current.stmts.append(Statement(ASSIGN, cmd))
            return current
        if isinstance(cmd, AssignNew):
            current.stmts.append(Statement(ASSIGN_NEW, cmd))
            return current
        if isinstance(cmd, Call):
            current.stmts.append(Statement(CALL, cmd))
            return current
        raise TypeError(f"cannot lower {cmd!r} to a CFG")


def build_cfg(body_or_impl) -> CFG:
    """Build the CFG of an implementation (or of a bare command)."""
    body = body_or_impl.body if isinstance(body_or_impl, ImplDecl) else body_or_impl
    builder = _Builder()
    entry = builder.new_block()
    exit_block = builder.lower(body, entry)
    return CFG(builder._blocks, entry.bid, exit_block.bid)
