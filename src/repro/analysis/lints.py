"""Declaration and reachability lints (codes ``OL201``–``OL203``).

* **OL201 / OL202** — a group or field that appears in no inclusion
  (``in`` clause or ``maps ... into``), no modifies list, no contract,
  and no implementation body is dead weight in the scope: it bloats the
  background predicate the prover instantiates for no benefit.
* **OL203** — code following ``assume false`` / ``assert false`` on every
  path never executes (``assume false`` blocks; ``assert false`` goes
  wrong). Found with a reachability instance of the dataflow engine whose
  transfer kills the state at literally-false conditions; one diagnostic
  per contiguous dead region.
"""

from __future__ import annotations

from typing import List, Set

from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Expr,
    FieldAccess,
    FieldDecl,
    GroupDecl,
    ImplDecl,
    ProcDecl,
    UnOp,
)
from repro.oolong.program import Scope
from repro.analysis.cfg import ASSERT, ASSIGN, ASSIGN_NEW, ASSUME, CALL, Statement, build_cfg
from repro.analysis.dataflow import ForwardAnalysis, run_forward, statement_states
from repro.analysis.diagnostics import Diagnostic


# ---------------------------------------------------------------------------
# Unused declarations
# ---------------------------------------------------------------------------


def _expr_fields(expr: Expr, out: Set[str]) -> None:
    if isinstance(expr, FieldAccess):
        out.add(expr.attr)
        _expr_fields(expr.obj, out)
    elif isinstance(expr, BinOp):
        _expr_fields(expr.left, out)
        _expr_fields(expr.right, out)
    elif isinstance(expr, UnOp):
        _expr_fields(expr.operand, out)


def _used_attributes(scope: Scope) -> Set[str]:
    """Every attribute name the scope mentions outside its own declaration."""
    used: Set[str] = set()
    for decl in scope.decls:
        if isinstance(decl, (GroupDecl, FieldDecl)):
            used.update(decl.in_groups)
        if isinstance(decl, FieldDecl):
            for clause in decl.maps:
                used.add(clause.mapped)
                used.update(clause.into)
        elif isinstance(decl, ProcDecl):
            for designator in decl.modifies:
                used.update(designator.path)
                used.add(designator.attr)
            for condition in decl.requires + decl.ensures:
                _expr_fields(condition, used)
        elif isinstance(decl, ImplDecl):
            for _block, stmt in build_cfg(decl).statements():
                node = stmt.node
                if isinstance(node, (Assert, Assume)):
                    _expr_fields(node.condition, used)
                elif isinstance(node, Assign):
                    _expr_fields(node.target, used)
                    _expr_fields(node.rhs, used)
                elif isinstance(node, AssignNew):
                    _expr_fields(node.target, used)
                elif isinstance(node, Call):
                    for arg in node.args:
                        _expr_fields(arg, used)
    return used


def check_unused_declarations(scope: Scope) -> List[Diagnostic]:
    """OL201/OL202: attributes no inclusion, modifies list, or command uses."""
    used = _used_attributes(scope)
    diagnostics: List[Diagnostic] = []
    for name, group in scope.groups.items():
        if name not in used:
            diagnostics.append(
                Diagnostic(
                    code="OL201",
                    message=(
                        f"group {name!r} is never used in an inclusion or "
                        "modifies list; it can be removed"
                    ),
                    position=group.position,
                )
            )
    for name, field_decl in scope.fields.items():
        if name not in used:
            diagnostics.append(
                Diagnostic(
                    code="OL202",
                    message=(
                        f"field {name!r} is never read, written, or listed "
                        "in a modifies clause; it can be removed"
                    ),
                    position=field_decl.position,
                )
            )
    return diagnostics


# ---------------------------------------------------------------------------
# Unreachable code
# ---------------------------------------------------------------------------

_REACHABLE = "reachable"
_DEAD = "dead"


def _is_false(expr: Expr) -> bool:
    return isinstance(expr, BoolConst) and not expr.value


class ReachabilityAnalysis(ForwardAnalysis):
    """Forward reachability; ``assume false``/``assert false`` kill it."""

    def initial_state(self, cfg) -> str:
        return _REACHABLE

    def join(self, states: List[str]) -> str:
        return _REACHABLE if _REACHABLE in states else _DEAD

    def transfer(self, stmt: Statement, state: str) -> str:
        if state is _DEAD:
            return _DEAD
        node = stmt.node
        if isinstance(node, (Assume, Assert)) and _is_false(node.condition):
            return _DEAD
        return state


def check_unreachable(scope: Scope, impl: ImplDecl) -> List[Diagnostic]:
    """OL203: the first statement of every contiguous dead region."""
    cfg = build_cfg(impl)
    analysis = ReachabilityAnalysis()
    result = run_forward(cfg, analysis)
    diagnostics: List[Diagnostic] = []
    previous_dead = False
    for _block, stmt, state in statement_states(cfg, analysis, result):
        dead = state is _DEAD
        # Report the entry into a dead region at an effectful statement
        # with a position (skip var brackets, which carry block structure).
        if dead and not previous_dead:
            if stmt.kind in (ASSERT, ASSUME, ASSIGN, ASSIGN_NEW, CALL):
                diagnostics.append(
                    Diagnostic(
                        code="OL203",
                        message=(
                            "unreachable code: every path to this point "
                            "passes through 'assume false' or 'assert false'"
                        ),
                        position=stmt.position,
                        impl=impl.name,
                    )
                )
                previous_dead = True
        elif not dead:
            previous_dead = False
    return diagnostics


def check_unreachable_code(scope: Scope) -> List[Diagnostic]:
    diagnostics: List[Diagnostic] = []
    for impls in scope.impls.values():
        for impl in impls:
            diagnostics.extend(check_unreachable(scope, impl))
    return diagnostics
