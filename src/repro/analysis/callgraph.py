"""Call-graph construction and recursion detection (code ``OL204``).

The graph has one node per declared procedure; an edge ``p -> q`` exists
when any implementation of ``p`` contains a call to ``q``. Cycles
(including self-loops) mean the procedures may recurse — legal in oolong
and handled by the wlp's frame quantifiers, but worth surfacing because
recursive scopes are exactly the ones on which the paper's Simplify-based
checker could diverge (EX-5.3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.errors import SourcePosition
from repro.oolong.ast import Call
from repro.oolong.program import Scope
from repro.analysis.cfg import CALL, build_cfg
from repro.analysis.diagnostics import Diagnostic


class CallGraph:
    """The may-call relation of a scope."""

    def __init__(self, scope: Scope):
        self.scope = scope
        edges: Dict[str, Set[str]] = {name: set() for name in scope.procs}
        sites: Dict[Tuple[str, str], Optional[SourcePosition]] = {}
        for impls in scope.impls.values():
            for impl in impls:
                edges.setdefault(impl.name, set())
                for _block, stmt in build_cfg(impl).statements():
                    if stmt.kind != CALL:
                        continue
                    node = stmt.node
                    assert isinstance(node, Call)
                    edges[impl.name].add(node.proc)
                    sites.setdefault((impl.name, node.proc), node.position)
        self.edges: Dict[str, FrozenSet[str]] = {
            name: frozenset(callees) for name, callees in edges.items()
        }
        self._sites = sites

    def callees(self, proc: str) -> FrozenSet[str]:
        return self.edges.get(proc, frozenset())

    def call_site(self, caller: str, callee: str) -> Optional[SourcePosition]:
        return self._sites.get((caller, callee))

    def reachable_from(self, proc: str) -> FrozenSet[str]:
        """All procedures transitively callable from ``proc`` (inclusive)."""
        seen: Set[str] = set()
        worklist = [proc]
        while worklist:
            current = worklist.pop()
            if current in seen:
                continue
            seen.add(current)
            worklist.extend(self.edges.get(current, ()))
        return frozenset(seen)

    def sccs(self) -> List[Tuple[str, ...]]:
        """Every strongly connected component (singletons included), in
        condensation order: callees before callers. Tarjan pops a
        component only after all components reachable from it, so the
        emission order is a reverse topological sort of the condensed
        graph — the evaluation order an interprocedural fixpoint wants.
        Deterministic."""
        index: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack: Set[str] = set()
        stack: List[str] = []
        counter = [0]
        components: List[Tuple[str, ...]] = []

        def strongconnect(node: str) -> None:
            index[node] = lowlink[node] = counter[0]
            counter[0] += 1
            stack.append(node)
            on_stack.add(node)
            for succ in sorted(self.edges.get(node, ())):
                if succ not in self.edges:
                    continue
                if succ not in index:
                    strongconnect(succ)
                    lowlink[node] = min(lowlink[node], lowlink[succ])
                elif succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(tuple(sorted(component)))

        for node in sorted(self.edges):
            if node not in index:
                strongconnect(node)
        return components

    def is_recursive(self, component: Tuple[str, ...]) -> bool:
        """May the procedures of ``component`` recurse — size > 1, or a
        singleton with a self-loop?"""
        if len(component) > 1:
            return True
        node = component[0]
        return node in self.edges.get(node, ())

    def cycles(self) -> List[Tuple[str, ...]]:
        """Strongly connected components that can recurse: every SCC of
        size > 1, plus self-loops. Deterministic order."""
        return sorted(c for c in self.sccs() if self.is_recursive(c))


def check_recursion(scope: Scope) -> List[Diagnostic]:
    """OL204 (info): one diagnostic per recursive component."""
    graph = CallGraph(scope)
    diagnostics: List[Diagnostic] = []
    for component in graph.cycles():
        first = component[0]
        # Find a concrete call site inside the component for the span.
        position = None
        for caller in component:
            for callee in component:
                position = graph.call_site(caller, callee)
                if position is not None:
                    break
            if position is not None:
                break
        chain = " -> ".join(component + (first,))
        diagnostics.append(
            Diagnostic(
                code="OL204",
                message=f"procedures may recurse: {chain}",
                position=position,
            )
        )
    return diagnostics
