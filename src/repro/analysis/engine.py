"""The lint driver: run every static pass and collect diagnostics.

``lint_scope`` is the single entry point the checker, the CLI, and the
API use. It is deliberately cheap — pure AST/CFG walks, no prover — so it
can run as a pre-filter in front of verification on every ``check_scope``
call (the budget is well under 5% of the prover's wall-clock).

Pass inventory:

========  =========================================================
family    passes
========  =========================================================
OL100     well-formedness (converted from :mod:`oolong.wellformed`)
OL10x     syntactic pivot uniqueness (:mod:`restrictions.pivot`)
OL110     flow-sensitive pivot escape (:mod:`analysis.escape`)
OL20x     unused declarations, unreachable code, recursion
OL30x     modifies-list inference (:mod:`analysis.modifies`)
========  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import WellFormednessError
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.analysis.callgraph import check_recursion
from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    diagnostic_from_error,
    sorted_diagnostics,
)
from repro.analysis.escape import check_pivot_escapes
from repro.analysis.lints import check_unreachable_code, check_unused_declarations
from repro.analysis.modifies import infer_modifies


@dataclass
class LintResult:
    """Everything the lint passes found."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: proc name -> inferred least modifies list (designator strings).
    inferred_modifies: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        return not self.errors

    def by_code(self, code: str) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.code == code]


def lint_scope(
    scope: Scope,
    *,
    include_restrictions: bool = True,
    include_flow: bool = True,
    include_inference: bool = True,
    include_lints: bool = True,
) -> LintResult:
    """Run the static-analysis passes over ``scope``.

    A scope that is not well-formed short-circuits to a single ``OL100``
    diagnostic: the other passes assume resolvable names.
    """
    from repro.obs import span
    from repro.testing.faults import fault_point

    with span("lint") as sp:
        try:
            check_well_formed(scope)
        except WellFormednessError as error:
            return fault_point(
                "lint", LintResult(diagnostics=[diagnostic_from_error(error)])
            )

        result = LintResult()
        if include_restrictions:
            from repro.restrictions.pivot import check_pivot_uniqueness

            result.diagnostics.extend(
                violation.to_diagnostic()
                for violation in check_pivot_uniqueness(scope)
            )
        if include_flow:
            result.diagnostics.extend(check_pivot_escapes(scope))
        if include_inference:
            inference = infer_modifies(scope)
            result.diagnostics.extend(inference.diagnostics)
            result.inferred_modifies = inference.inferred
        if include_lints:
            result.diagnostics.extend(check_unused_declarations(scope))
            result.diagnostics.extend(check_unreachable_code(scope))
            result.diagnostics.extend(check_recursion(scope))
        result.diagnostics = sorted_diagnostics(result.diagnostics)
        sp.set(diagnostics=len(result.diagnostics))
        return fault_point("lint", result)


def lint_program(source: str, filename: Optional[str] = None, **passes) -> LintResult:
    """Parse ``source`` and lint it (parse errors propagate as usual)."""
    return lint_scope(Scope.from_source(source, filename), **passes)
