"""Flow-sensitive pivot escape analysis (code ``OL110``).

The syntactic restriction pass (:mod:`repro.restrictions.pivot`) flags
every *introduction* of a confined value into a local — each ``x := t``
formal copy and each ``x := e.p`` pivot read — but says nothing about
where the value goes, and flags copies whose value provably never reaches
the heap. This pass complements it with a taint analysis over the CFG:

* a local is *tainted* when it may hold a pivot value — seeded by formal
  parameters (which may carry pivots per the paper's stack-copy
  exemption) and by pivot-field reads, and propagated through local
  copies;
* a diagnostic is emitted only at a *heap sink* — an assignment that
  stores a tainted value (or a direct pivot read) into an object field —
  and carries the full flow path from source to sink as notes.

The sink sites (``r.obj := tmp`` after ``tmp := st.vec``) are exactly the
stores the syntactic pass cannot see, because a local on the right-hand
side is locally legal; conversely, a formal copied into a local that dies
locally is flagged syntactically but produces no diagnostic here. The
differential test suite checks both directions of that relationship.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.errors import SourcePosition
from repro.oolong.ast import Assign, Expr, FieldAccess, Id, ImplDecl
from repro.oolong.program import Scope
from repro.analysis.cfg import ASSIGN, ASSIGN_NEW, VAR_ENTER, VAR_EXIT, Statement, build_cfg
from repro.analysis.dataflow import ForwardAnalysis, run_forward, statement_states
from repro.analysis.diagnostics import Diagnostic, Note


class TaintStep:
    """One assignment along a flow path."""

    __slots__ = ("description", "position")

    def __init__(self, description: str, position: Optional[SourcePosition]):
        self.description = description
        self.position = position

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TaintStep)
            and self.description == other.description
        )

    def __hash__(self) -> int:
        return hash(self.description)

    def __repr__(self) -> str:
        return f"TaintStep({self.description!r})"


class Taint:
    """Why a local may hold a confined value, with the path that got it
    there. ``kind`` is ``'pivot'`` (value read from a pivot field) or
    ``'formal'`` (value of a formal parameter, which may be a pivot copy)."""

    __slots__ = ("kind", "source", "steps")

    def __init__(self, kind: str, source: str, steps: Tuple[TaintStep, ...] = ()):
        self.kind = kind
        self.source = source
        self.steps = steps

    def extended(self, step: TaintStep) -> "Taint":
        return Taint(self.kind, self.source, self.steps + (step,))

    def describe_source(self) -> str:
        if self.kind == "pivot":
            return f"pivot field {self.source!r}"
        return f"formal parameter {self.source!r}"

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, Taint)
            and self.kind == other.kind
            and self.source == other.source
            and self.steps == other.steps
        )

    def __hash__(self) -> int:
        return hash((self.kind, self.source, self.steps))


#: The dataflow state: local name -> set of taints it may carry.
TaintState = Dict[str, FrozenSet[Taint]]


class PivotEscapeAnalysis(ForwardAnalysis):
    """The taint-propagation problem for one implementation."""

    def __init__(self, scope: Scope, impl: ImplDecl):
        self.scope = scope
        self.impl = impl

    # -- dataflow interface -------------------------------------------------

    def initial_state(self, cfg) -> TaintState:
        return {
            param: frozenset({Taint("formal", param)})
            for param in self.impl.params
        }

    def join(self, states: List[TaintState]) -> TaintState:
        merged: Dict[str, FrozenSet[Taint]] = {}
        for state in states:
            for var, taints in state.items():
                merged[var] = merged.get(var, frozenset()) | taints
        return merged

    def transfer(self, stmt: Statement, state: TaintState) -> TaintState:
        if stmt.kind == VAR_ENTER:
            new = dict(state)
            new[stmt.var] = frozenset()
            return new
        if stmt.kind == VAR_EXIT:
            new = dict(state)
            new.pop(stmt.var, None)
            return new
        if stmt.kind == ASSIGN_NEW:
            node = stmt.node
            if isinstance(node.target, Id):
                new = dict(state)
                new[node.target.name] = frozenset()
                return new
            return state
        if stmt.kind == ASSIGN:
            node = stmt.node
            if isinstance(node.target, Id):
                new = dict(state)
                new[node.target.name] = self._rhs_taints(
                    node.target.name, node.rhs, state, node.position
                )
                return new
            return state  # heap stores are sinks, not taint producers
        return state  # assert / assume / call leave locals unchanged

    # -- taint computation --------------------------------------------------

    def _rhs_taints(
        self,
        target: str,
        rhs: Expr,
        state: TaintState,
        position: Optional[SourcePosition],
    ) -> FrozenSet[Taint]:
        if isinstance(rhs, Id):
            step = TaintStep(f"{target} := {rhs.name}", position)
            return frozenset(t.extended(step) for t in state.get(rhs.name, frozenset()))
        if isinstance(rhs, FieldAccess) and self.scope.is_pivot(rhs.attr):
            step = TaintStep(f"{target} := {rhs} (pivot read)", position)
            return frozenset({Taint("pivot", rhs.attr, (step,))})
        # Constants, arithmetic, non-pivot field reads: no confined value.
        return frozenset()

    def sink_taints(self, stmt: Statement, state: TaintState) -> List[Taint]:
        """The taints stored to the heap by ``stmt``, if it is a sink."""
        if stmt.kind != ASSIGN:
            return []
        node = stmt.node
        if not isinstance(node.target, FieldAccess):
            return []
        rhs = node.rhs
        if isinstance(rhs, Id):
            return sorted(
                state.get(rhs.name, frozenset()),
                key=lambda t: (len(t.steps), t.kind, t.source),
            )
        if isinstance(rhs, FieldAccess) and self.scope.is_pivot(rhs.attr):
            step = TaintStep(f"{node.target} := {rhs} (pivot read)", node.position)
            return [Taint("pivot", rhs.attr, (step,))]
        return []


def check_impl_escapes(scope: Scope, impl: ImplDecl) -> List[Diagnostic]:
    """All OL110 escapes in one implementation, with flow paths."""
    cfg = build_cfg(impl)
    analysis = PivotEscapeAnalysis(scope, impl)
    result = run_forward(cfg, analysis)
    diagnostics: List[Diagnostic] = []
    for _block, stmt, state in statement_states(cfg, analysis, result):
        taints = analysis.sink_taints(stmt, state)
        if not taints:
            continue
        node = stmt.node
        assert isinstance(node, Assign) and isinstance(node.target, FieldAccess)
        seen_sources = set()
        for taint in taints:
            key = (taint.kind, taint.source)
            if key in seen_sources:
                continue  # one representative (shortest) path per source
            seen_sources.add(key)
            sink = TaintStep(
                f"{node.target} := {node.rhs} (heap store)", node.position
            )
            steps = taint.steps if taint.steps else ()
            notes = tuple(
                Note(step.description, step.position)
                for step in steps + (sink,)
            )
            diagnostics.append(
                Diagnostic(
                    code="OL110",
                    message=(
                        f"value of {taint.describe_source()} may escape into "
                        f"field {node.target.attr!r} "
                        f"(flow path of {len(notes)} step"
                        f"{'s' if len(notes) != 1 else ''})"
                    ),
                    position=node.position,
                    impl=impl.name,
                    notes=notes,
                )
            )
    return diagnostics


def check_pivot_escapes(scope: Scope) -> List[Diagnostic]:
    """Run the flow-sensitive escape analysis over every implementation."""
    diagnostics: List[Diagnostic] = []
    for impls in scope.impls.values():
        for impl in impls:
            diagnostics.extend(check_impl_escapes(scope, impl))
    return diagnostics
