"""The shared diagnostics engine for every static pass.

All user-facing findings — restriction violations, lints, inference
results — are represented as :class:`Diagnostic` records with a stable
error code, a severity, an optional source span, and optional secondary
notes (used e.g. for flow paths). One engine, five code families:

* ``OL0xx`` — frontend failures (lexical and syntax errors, surfaced by
  the parser's error-recovery mode);
* ``OL1xx`` — alias-confinement restrictions (the paper's Section 3 rules
  plus the flow-sensitive escape analysis);
* ``OL2xx`` — lints (unused declarations, unreachable code, recursion);
* ``OL3xx`` — inference results (modifies-list inference);
* ``OL9xx`` — pipeline faults (a checking stage crashed or a time budget
  ran out; carries a captured traceback as notes).

``OL100`` is reserved for well-formedness failures so that
:mod:`repro.oolong.wellformed` findings render through the same engine.

The legacy rule tags of :mod:`repro.restrictions.pivot` (``pivot-target``,
``formal-copy``, ...) are kept as aliases of their ``OL1xx`` codes so that
existing reports and the EXPERIMENTS.md transcripts continue to match.

Two renderers are provided: a text renderer with caret snippets (given the
source texts) and a JSON renderer with a stable, machine-readable schema.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.errors import ReproError, SourcePosition


class Severity(enum.Enum):
    """How serious a diagnostic is; ordered for ``--fail-on`` thresholds."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return {"info": 0, "warning": 1, "error": 2}[self.value]

    def at_least(self, other: "Severity") -> bool:
        return self.rank >= other.rank


#: code -> (default severity, short title). The registry is the single
#: source of truth for which codes exist; passes look their code up here.
CODES: Dict[str, Tuple[Severity, str]] = {
    # OL0xx — frontend (lexing and parsing).
    "OL001": (Severity.ERROR, "lexical error"),
    "OL002": (Severity.ERROR, "syntax error"),
    # OL1xx — restrictions.
    "OL100": (Severity.ERROR, "well-formedness violation"),
    "OL101": (Severity.ERROR, "pivot field assigned a value other than new() or null"),
    "OL102": (Severity.ERROR, "pivot field value flows into a variable or field"),
    "OL103": (Severity.ERROR, "object-returning operator on an assignment right operand"),
    "OL104": (Severity.ERROR, "formal parameter copied"),
    "OL105": (Severity.ERROR, "assignment to a formal parameter"),
    "OL110": (Severity.ERROR, "pivot value escapes to the heap (flow-sensitive)"),
    # OL2xx — lints.
    "OL201": (Severity.WARNING, "group is never used"),
    "OL202": (Severity.WARNING, "field is never used"),
    "OL203": (Severity.WARNING, "unreachable code"),
    "OL204": (Severity.INFO, "procedures may recurse"),
    # OL3xx — inference.
    "OL301": (Severity.ERROR, "write or call not licensed by the declared modifies list"),
    "OL302": (Severity.WARNING, "modifies list is over-broad"),
    "OL310": (Severity.ERROR, "implementation not proved"),
    # OL4xx — static discharge (interprocedural effect analysis).
    "OL401": (Severity.ERROR, "frame obligation refuted statically"),
    "OL402": (Severity.ERROR, "static discharge disagrees with the prover"),
    "OL403": (Severity.INFO, "obligations deferred to the prover under strict static discharge"),
    # OL9xx — pipeline faults (crash isolation and deadlines).
    "OL900": (Severity.ERROR, "internal error in a checking stage"),
    "OL901": (Severity.ERROR, "time budget exhausted"),
    "OL902": (Severity.ERROR, "worker process died repeatedly; job quarantined"),
    "OL903": (Severity.WARNING, "result cache entry rejected"),
    "OL904": (Severity.WARNING, "distributed backend unavailable; degraded to local checking"),
    "OL905": (Severity.WARNING, "run ledger damaged or stale; affected verdicts recomputed"),
}

#: Legacy rule-tag aliases (the strings PivotViolation has always used).
RULE_ALIASES: Dict[str, str] = {
    "lex-error": "OL001",
    "parse-error": "OL002",
    "well-formedness": "OL100",
    "pivot-target": "OL101",
    "pivot-read": "OL102",
    "object-op": "OL103",
    "formal-copy": "OL104",
    "formal-target": "OL105",
    "pivot-escape": "OL110",
    "unused-group": "OL201",
    "unused-field": "OL202",
    "unreachable": "OL203",
    "recursion": "OL204",
    "missing-licence": "OL301",
    "overbroad-modifies": "OL302",
    "not-proved": "OL310",
    "static-refuted": "OL401",
    "discharge-disagreement": "OL402",
    "discharge-deferred": "OL403",
    "internal-error": "OL900",
    "deadline": "OL901",
    "fleet-degraded": "OL904",
    "ledger-recovery": "OL905",
}

_CODE_TO_RULE = {code: rule for rule, code in RULE_ALIASES.items()}


def code_for_rule(rule: str) -> str:
    """The ``OLxxx`` code for a legacy rule tag (identity on codes)."""
    if rule in CODES:
        return rule
    try:
        return RULE_ALIASES[rule]
    except KeyError:
        raise KeyError(f"unknown diagnostic rule {rule!r}") from None


def rule_for_code(code: str) -> str:
    """The legacy rule tag for a code (used in rendered output)."""
    return _CODE_TO_RULE.get(code, code)


@dataclass(frozen=True)
class Note:
    """A secondary message attached to a diagnostic (e.g. one flow step)."""

    message: str
    position: Optional[SourcePosition] = None

    def to_dict(self) -> dict:
        return {"message": self.message, **_position_dict(self.position)}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static pass."""

    code: str
    message: str
    severity: Severity = field(default=None)  # type: ignore[assignment]
    position: Optional[SourcePosition] = None
    impl: Optional[str] = None
    notes: Tuple[Note, ...] = ()

    def __post_init__(self):
        if self.code not in CODES:
            raise KeyError(f"unregistered diagnostic code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", CODES[self.code][0])

    @property
    def rule(self) -> str:
        """The legacy rule tag aliasing this diagnostic's code."""
        return rule_for_code(self.code)

    def to_dict(self) -> dict:
        data = {
            "code": self.code,
            "rule": self.rule,
            "severity": self.severity.value,
            "message": self.message,
            **_position_dict(self.position),
        }
        if self.impl is not None:
            data["impl"] = self.impl
        if self.notes:
            data["notes"] = [note.to_dict() for note in self.notes]
        return data

    def __str__(self) -> str:
        where = f"{self.position}: " if self.position else ""
        scope = f"impl {self.impl}: " if self.impl else ""
        return f"{where}{self.severity.value}[{self.code}] {scope}{self.message}"


def diagnostic_from_error(error: ReproError, code: str = "OL100") -> Diagnostic:
    """Wrap a raised checker error as a diagnostic (default: OL100)."""
    return Diagnostic(code=code, message=error.message, position=error.position)


def _position_from_dict(data: Mapping) -> Optional[SourcePosition]:
    if "line" not in data or "column" not in data:
        return None
    return SourcePosition(
        line=int(data["line"]),
        column=int(data["column"]),
        file=data.get("file"),
    )


def diagnostic_from_dict(data: Mapping) -> Diagnostic:
    """Rehydrate a :meth:`Diagnostic.to_dict` payload.

    Exact inverse of ``to_dict`` (the run ledger round-trips error
    diagnostics through JSON so a resumed run reports them verbatim).
    Raises ``KeyError`` on an unregistered code — a ledger written by a
    different code version fails validation rather than lying.
    """
    return Diagnostic(
        code=str(data["code"]),
        message=str(data["message"]),
        severity=Severity(data["severity"]) if "severity" in data else None,
        position=_position_from_dict(data),
        impl=data.get("impl"),
        notes=tuple(
            Note(
                message=str(note["message"]),
                position=_position_from_dict(note),
            )
            for note in data.get("notes", ())
        ),
    )


#: How many trailing traceback lines an OL900 diagnostic keeps as notes.
_TRACEBACK_NOTE_LINES = 8


def internal_error_diagnostic(
    stage: str,
    error: BaseException,
    *,
    severity: Optional[Severity] = None,
    impl: Optional[str] = None,
) -> Diagnostic:
    """An ``OL900`` diagnostic for an unexpected crash in ``stage``.

    The exception's class and message go in the primary message; the tail
    of the captured traceback rides along as notes so crash reports stay
    actionable without drowning the main report.
    """
    import traceback

    formatted = traceback.format_exception(type(error), error, error.__traceback__)
    tail = "".join(formatted).rstrip().splitlines()[-_TRACEBACK_NOTE_LINES:]
    return Diagnostic(
        code="OL900",
        message=f"{stage} failed internally: {type(error).__name__}: {error}",
        severity=severity,
        impl=impl,
        notes=tuple(Note(line.rstrip()) for line in tail),
    )


def sort_key(diag: Diagnostic):
    pos = diag.position
    return (
        pos.file or "" if pos else "",
        pos.line if pos else 0,
        pos.column if pos else 0,
        diag.code,
        diag.message,
    )


def sorted_diagnostics(diags: Iterable[Diagnostic]) -> List[Diagnostic]:
    """Stable order: by file, line, column, code, message."""
    return sorted(diags, key=sort_key)


def max_severity(diags: Iterable[Diagnostic]) -> Optional[Severity]:
    worst: Optional[Severity] = None
    for diag in diags:
        if worst is None or diag.severity.rank > worst.rank:
            worst = diag.severity
    return worst


def exceeds_threshold(
    diags: Iterable[Diagnostic], threshold: Union[Severity, str]
) -> bool:
    """True iff any diagnostic is at or above ``threshold`` severity."""
    if isinstance(threshold, str):
        threshold = Severity(threshold)
    return any(diag.severity.at_least(threshold) for diag in diags)


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------

SourceMap = Mapping[Optional[str], str]


def _normalize_sources(sources: Union[None, str, SourceMap]) -> SourceMap:
    if sources is None:
        return {}
    if isinstance(sources, str):
        return {None: sources}
    return sources


def _position_dict(position: Optional[SourcePosition]) -> dict:
    if position is None:
        return {}
    data = {"line": position.line, "column": position.column}
    if position.file is not None:
        data["file"] = position.file
    return data


def _snippet(position: SourcePosition, sources: SourceMap) -> List[str]:
    source = sources.get(position.file)
    if source is None:
        return []
    lines = source.splitlines()
    if not 1 <= position.line <= len(lines):
        return []
    text = lines[position.line - 1]
    caret = " " * max(position.column - 1, 0) + "^"
    return [f"  | {text}", f"  | {caret}"]


def render_text(
    diags: Sequence[Diagnostic],
    sources: Union[None, str, SourceMap] = None,
) -> str:
    """Render diagnostics as human-readable text with caret snippets.

    ``sources`` maps file names (or ``None`` for anonymous texts) to
    their full source text; pass a plain string to mean ``{None: text}``.
    """
    source_map = _normalize_sources(sources)
    lines: List[str] = []
    for diag in sorted_diagnostics(diags):
        lines.append(str(diag))
        if diag.position is not None:
            lines.extend(_snippet(diag.position, source_map))
        for note in diag.notes:
            where = f" at {note.position}" if note.position else ""
            lines.append(f"  note: {note.message}{where}")
    return "\n".join(lines)


def render_json(diags: Sequence[Diagnostic], **extra) -> str:
    """Render diagnostics (plus optional top-level fields) as stable JSON."""
    payload = {
        "diagnostics": [d.to_dict() for d in sorted_diagnostics(diags)],
    }
    payload.update(extra)
    return json.dumps(payload, indent=2, sort_keys=True)
