"""Precomputed inclusion lattice over a scope's data-group hierarchy.

The licence semantics of the paper rest on one relation: a licence on
``X.a`` covers a location ``(o, b)`` when ``b`` is reachable from ``a``
through the declared inclusions — local inclusions (``a ≽ b``, i.e. ``b``
declared ``in a``) plus rep inclusions through pivot fields (``g —f→ x``
from ``field f maps x into g``). :func:`repro.analysis.modifies.covers`
decides one such query by recomputing closures on the fly; this module
precomputes the whole lattice once per scope so that the discharge pass
(:mod:`repro.analysis.effects`) can answer subsumption queries in
near-constant time and enumerate static ``inc`` reachability without
touching a store.

Cyclic rep inclusions (``field next maps g into g`` — the scope family on
which the paper reports Simplify divergence, EX-5.3) are harmless here:
every closure is a fixpoint over the *finite* attribute set, so it
terminates regardless of cycles in the declared relation.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Tuple

from repro.oolong.ast import Designator
from repro.oolong.program import Scope


class InclusionLattice:
    """Reflexive-transitive closure of a scope's inclusion relation."""

    def __init__(self, scope: Scope):
        self.scope = scope
        attrs = tuple(scope.attribute_names())
        # Local downward closure: down[a] = every attribute b with a ≽ b
        # (b == a, or b transitively declared ``in`` a). enclosing_groups
        # is the upward closure, so invert it.
        down: Dict[str, set] = {attr: {attr} for attr in attrs}
        for attr in attrs:
            for group in scope.enclosing_groups(attr):
                down.setdefault(group, set()).add(attr)
        self._down: Dict[str, FrozenSet[str]] = {
            name: frozenset(members) for name, members in down.items()
        }
        # Pivot steps: steps[f] = ((into_group, mapped), ...) from every
        # ``field f maps mapped into into_group`` clause.
        self._steps: Dict[str, Tuple[Tuple[str, str], ...]] = {}
        for field_name, group, mapped in scope.all_rep_triples():
            self._steps.setdefault(field_name, ())
            self._steps[field_name] = self._steps[field_name] + ((group, mapped),)
        self._reachable: Dict[str, FrozenSet[str]] = {}

    # -- O(1)-ish primitive queries -----------------------------------------

    def downward(self, attr: str) -> FrozenSet[str]:
        """All attributes locally included in ``attr`` (reflexive)."""
        return self._down.get(attr, frozenset({attr}))

    def locally_covers(self, group: str, attr: str) -> bool:
        """``group ≽ attr`` — one hash lookup and one set membership."""
        return attr in self.downward(group)

    def step(self, field_name: str, attrs: FrozenSet[str]) -> FrozenSet[str]:
        """Cross one pivot field: the rep attributes reachable from any
        group in ``attrs`` through ``field_name``'s maps clauses."""
        stepped = set()
        for group, mapped in self._steps.get(field_name, ()):
            if group in attrs:
                stepped.add(mapped)
        return frozenset(stepped)

    # -- closures ------------------------------------------------------------

    def reachable(self, attr: str) -> FrozenSet[str]:
        """Static ``inc`` reachability: every attribute a licence on
        ``attr`` could ever cover, through any chain of local inclusions
        and pivot steps (over all fields). A fixpoint over the finite
        attribute set — terminates on cyclic rep inclusions."""
        cached = self._reachable.get(attr)
        if cached is not None:
            return cached
        closed = set(self.downward(attr))
        changed = True
        while changed:
            changed = False
            for field_name in self._steps:
                for mapped in self.step(field_name, frozenset(closed)):
                    members = self.downward(mapped)
                    if not members <= closed:
                        closed |= members
                        changed = True
        result = frozenset(closed)
        self._reachable[attr] = result
        return result

    def writable_fields(self, designators) -> FrozenSet[str]:
        """Every *field* a frame of ``designators`` could license a write
        to, downward-closed through pivots. Used to decide which fields a
        callee may redirect."""
        fields = set()
        for designator in designators:
            for attr in self.reachable(designator.attr):
                if self.scope.is_field(attr):
                    fields.add(attr)
        return frozenset(fields)

    # -- subsumption ---------------------------------------------------------

    def covers(self, declared: Designator, required: Designator) -> bool:
        """Does the licence ``declared`` imply the licence ``required``?

        Same decision procedure as :func:`repro.analysis.modifies.covers`
        (``declared = r.p1...pk.a`` covers ``required =
        r.p1...pk.q1...qm.b`` when stepping ``a``'s downward closure
        through the pivots ``q1...qm`` still contains ``b``), but every
        closure is a precomputed set lookup.
        """
        if declared.root != required.root:
            return False
        k = len(declared.path)
        if k > len(required.path):
            return False
        if tuple(required.path[:k]) != tuple(declared.path):
            return False
        attrs = self.downward(declared.attr)
        for field_name in required.path[k:]:
            stepped = self.step(field_name, attrs)
            if not stepped:
                return False
            merged = set()
            for mapped in stepped:
                merged |= self.downward(mapped)
            attrs = frozenset(merged)
        return required.attr in attrs

    def covered_by_frame(self, frame, required: Designator) -> bool:
        """Is ``required`` licensed by any designator of ``frame``?"""
        return any(self.covers(declared, required) for declared in frame)
