"""SARIF v2.1.0 rendering of OLxxx findings.

One static-analysis interchange document per run, alongside the existing
text and JSON renderers: ``runs[0].tool.driver`` lists every registered
code as a reporting rule and each :class:`~repro.analysis.diagnostics.
Diagnostic` becomes a result with a ``ruleId``, a mapped ``level``
(``error``/``warning``/``note``), a message, and a physical location
when the finding carries a source position. Secondary notes ride along
as ``relatedLocations`` so inclusion-chain blame survives the export.

Verification verdicts are exported through the same channel: a failed
implementation becomes an ``OL310`` result (or rides its own diagnostic,
e.g. OL401/OL900, when one already names the failure).
"""

from __future__ import annotations

import json
from typing import Iterable, List, Optional, Sequence

from repro import __version__
from repro.analysis.diagnostics import (
    CODES,
    Diagnostic,
    Severity,
    sorted_diagnostics,
)

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rules() -> List[dict]:
    rules = []
    for code, (severity, title) in sorted(CODES.items()):
        rules.append(
            {
                "id": code,
                "name": code,
                "shortDescription": {"text": title},
                "defaultConfiguration": {"level": _LEVELS[severity]},
            }
        )
    return rules


def _location(position, message: Optional[str] = None) -> Optional[dict]:
    if position is None:
        return None
    physical = {
        "region": {
            "startLine": position.line,
            "startColumn": position.column,
        }
    }
    if position.file is not None:
        physical["artifactLocation"] = {"uri": position.file}
    location: dict = {"physicalLocation": physical}
    if message is not None:
        location["message"] = {"text": message}
    return location


def _result(diag: Diagnostic) -> dict:
    message = diag.message
    if diag.impl is not None:
        message = f"impl {diag.impl}: {message}"
    result: dict = {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": message},
    }
    location = _location(diag.position)
    if location is not None:
        result["locations"] = [location]
    related = []
    for note in diag.notes:
        related.append(
            _location(note.position, note.message)
            or {"message": {"text": note.message}}
        )
    if related:
        result["relatedLocations"] = related
    return result


def sarif_log(diagnostics: Iterable[Diagnostic]) -> dict:
    """The complete SARIF document for ``diagnostics``, as a dict."""
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "oolong-check",
                        "informationUri": (
                            "https://github.com/oolong-repro/oolong"
                        ),
                        "version": __version__,
                        "rules": _rules(),
                    }
                },
                "results": [
                    _result(diag)
                    for diag in sorted_diagnostics(diagnostics)
                ],
            }
        ],
    }


def render_sarif(diagnostics: Iterable[Diagnostic]) -> str:
    """Render diagnostics as a SARIF v2.1.0 JSON document."""
    return json.dumps(sarif_log(diagnostics), indent=2, sort_keys=True)


def report_diagnostics(report) -> List[Diagnostic]:
    """Every finding of a :class:`~repro.vcgen.checker.CheckReport` as
    diagnostics: the report's own, plus one OL310 per failed verdict
    that no diagnostic already names."""
    diagnostics = list(report.diagnostics)
    for verdict in report.verdicts:
        if verdict.status.value == "verified":
            continue
        if any(d.impl == verdict.impl.name for d in report.diagnostics):
            continue
        failed = verdict.failed_obligation
        detail = f": {failed.description}" if failed is not None else ""
        diagnostics.append(
            Diagnostic(
                code="OL310",
                message=f"{verdict.status.value}{detail}",
                position=getattr(verdict.impl, "position", None),
                impl=verdict.impl.name,
            )
        )
    return diagnostics


def render_report_sarif(report) -> str:
    """Render a whole check report (diagnostics + verdicts) as SARIF."""
    return render_sarif(report_diagnostics(report))
