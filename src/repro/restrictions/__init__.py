"""Syntactic alias-confinement restrictions (Section 3 of the paper).

:mod:`repro.restrictions.pivot` implements the **pivot uniqueness**
restriction, a purely syntactic check on assignment commands. The **owner
exclusion** restriction is semantic — it is checked as a call-site
precondition by the VC generator (:mod:`repro.vcgen`) and monitored at
runtime by the interpreter (:mod:`repro.semantics`).
"""

from repro.restrictions.pivot import (
    PivotViolation,
    check_pivot_uniqueness,
    enforce_pivot_uniqueness,
)

__all__ = [
    "PivotViolation",
    "check_pivot_uniqueness",
    "enforce_pivot_uniqueness",
]
