"""The pivot uniqueness restriction (Section 3.0 of the paper).

The restriction confines the values of pivot fields so that, except for
copies in formal parameters on the call stack, a non-null pivot value is
stored nowhere else. Three syntactic rules on assignment commands:

1. If the assignment target is ``e.f`` with ``f`` a pivot field, the right
   operand must be ``new()`` or ``null``.
2. The right operand may not *extract* a pivot value:
   * ``e.f`` with ``f`` a pivot field is forbidden;
   * an operator expression must not return an object (none of oolong's
     predefined operators do);
   * an identifier right operand must be a local variable, never a formal
     parameter.
3. Assignments to formal parameters are not allowed (enforced by the
   well-formedness pass, and re-checked here for standalone use).

Passing a pivot value as a call argument remains legal; that case is
governed by owner exclusion at the call site.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from repro.errors import RestrictionError, SourcePosition
from repro.oolong.ast import (
    Assign,
    AssignNew,
    BinOp,
    Choice,
    Cmd,
    Expr,
    FieldAccess,
    Id,
    ImplDecl,
    OBJECT_RETURNING_OPS,
    Seq,
    UnOp,
    VarCmd,
)
from repro.oolong.program import Scope


@dataclass(frozen=True)
class PivotViolation:
    """One violation of the pivot uniqueness restriction."""

    impl: str
    rule: str
    detail: str
    position: Optional[SourcePosition] = None

    @property
    def code(self) -> str:
        """The stable ``OL1xx`` error code aliased by this rule tag."""
        from repro.analysis.diagnostics import code_for_rule

        return code_for_rule(self.rule)

    def to_diagnostic(self):
        """This violation as a record of the shared diagnostics engine."""
        from repro.analysis.diagnostics import Diagnostic

        return Diagnostic(
            code=self.code,
            message=self.detail,
            position=self.position,
            impl=self.impl,
        )

    def __str__(self) -> str:
        where = f" at {self.position}" if self.position else ""
        return f"[{self.rule}] impl {self.impl}{where}: {self.detail}"


#: Rule identifiers used in violation reports. Each tag aliases a stable
#: ``OL1xx`` diagnostic code (see :mod:`repro.analysis.diagnostics`); the
#: strings are kept because published transcripts match on them.
RULE_PIVOT_TARGET = "pivot-target"  # OL101
RULE_PIVOT_READ = "pivot-read"  # OL102
RULE_OBJECT_OP = "object-op"  # OL103
RULE_FORMAL_COPY = "formal-copy"  # OL104
RULE_FORMAL_TARGET = "formal-target"  # OL105


def check_pivot_uniqueness(scope: Scope) -> List[PivotViolation]:
    """Check every implementation in ``scope``; return all violations."""
    from repro.obs import span
    from repro.testing.faults import fault_point

    with span("pivot") as sp:
        violations: List[PivotViolation] = []
        for impls in scope.impls.values():
            for impl in impls:
                violations.extend(check_impl(scope, impl))
        sp.set(violations=len(violations))
        return fault_point("pivot", violations)


def enforce_pivot_uniqueness(scope: Scope) -> None:
    """Raise :class:`RestrictionError` on the first violation."""
    violations = check_pivot_uniqueness(scope)
    if violations:
        first = violations[0]
        raise RestrictionError(str(first), first.position)


def check_impl(scope: Scope, impl: ImplDecl) -> List[PivotViolation]:
    """Check a single implementation."""
    violations: List[PivotViolation] = []
    _walk(scope, impl, impl.body, set(impl.params), violations)
    return violations


def _walk(
    scope: Scope,
    impl: ImplDecl,
    cmd: Cmd,
    formals: Set[str],
    out: List[PivotViolation],
) -> None:
    if isinstance(cmd, Seq):
        _walk(scope, impl, cmd.first, formals, out)
        _walk(scope, impl, cmd.second, formals, out)
    elif isinstance(cmd, Choice):
        _walk(scope, impl, cmd.left, formals, out)
        _walk(scope, impl, cmd.right, formals, out)
    elif isinstance(cmd, VarCmd):
        _walk(scope, impl, cmd.body, formals, out)
    elif isinstance(cmd, Assign):
        _check_assign(scope, impl, cmd, formals, out)
    elif isinstance(cmd, AssignNew):
        _check_target_is_not_formal(impl, cmd.target, formals, cmd.position, out)
    # assert/assume/skip/call never violate pivot uniqueness.


def _check_assign(
    scope: Scope,
    impl: ImplDecl,
    cmd: Assign,
    formals: Set[str],
    out: List[PivotViolation],
) -> None:
    _check_target_is_not_formal(impl, cmd.target, formals, cmd.position, out)

    target_is_pivot = (
        isinstance(cmd.target, FieldAccess) and scope.is_pivot(cmd.target.attr)
    )
    if target_is_pivot and not _is_null(cmd.rhs):
        out.append(
            PivotViolation(
                impl.name,
                RULE_PIVOT_TARGET,
                f"pivot field {cmd.target.attr!r} may only be assigned "
                f"new() or null, not {cmd.rhs}",
                cmd.position,
            )
        )

    out.extend(_rhs_violations(scope, impl, cmd.rhs, formals, cmd.position))


def _check_target_is_not_formal(
    impl: ImplDecl,
    target: Expr,
    formals: Set[str],
    position: Optional[SourcePosition],
    out: List[PivotViolation],
) -> None:
    if isinstance(target, Id) and target.name in formals:
        out.append(
            PivotViolation(
                impl.name,
                RULE_FORMAL_TARGET,
                f"assignment to formal parameter {target.name!r}",
                position,
            )
        )


def _is_null(expr: Expr) -> bool:
    from repro.oolong.ast import NullConst

    return isinstance(expr, NullConst)


def _rhs_violations(
    scope: Scope,
    impl: ImplDecl,
    rhs: Expr,
    formals: Set[str],
    position: Optional[SourcePosition],
) -> List[PivotViolation]:
    """Rule 2 checks on a right operand (top-level form only).

    Only the outermost shape of the right operand is restricted: reading
    *through* a pivot (``x.vec.cnt``) consumes the value transiently and is
    legal; what is forbidden is storing a pivot value itself.
    """
    violations: List[PivotViolation] = []
    if isinstance(rhs, FieldAccess) and scope.is_pivot(rhs.attr):
        violations.append(
            PivotViolation(
                impl.name,
                RULE_PIVOT_READ,
                f"value of pivot field {rhs.attr!r} may not flow into a "
                "variable or field",
                position,
            )
        )
    elif isinstance(rhs, Id) and rhs.name in formals:
        violations.append(
            PivotViolation(
                impl.name,
                RULE_FORMAL_COPY,
                f"formal parameter {rhs.name!r} may not be copied "
                "(it may hold a pivot value)",
                position,
            )
        )
    elif isinstance(rhs, (BinOp, UnOp)) and rhs.op in OBJECT_RETURNING_OPS:
        violations.append(
            PivotViolation(
                impl.name,
                RULE_OBJECT_OP,
                f"operator {rhs.op!r} returns an object and may not appear "
                "as an assignment right operand",
                position,
            )
        )
    return violations
