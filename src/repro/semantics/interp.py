"""A nondeterministic interpreter for oolong with runtime monitors.

Execution explores *every* resolution of the demonic choices — ``C [] D``,
implementation dispatch, and the configurable initial values of ``var`` —
up to path/step budgets, and returns the multiset of reachable outcomes.

The monitors give the paper's static claims an operational ground truth:

* **modifies monitor** — a field write must be permitted by every active
  frame: the written location is either of an object unallocated at that
  frame's entry, or included (in the frame's *entry* store, matching the
  static semantics) in a location listed in the frame's modifies list;
* **pivot-uniqueness monitor** — after every write, a non-null value
  stored in a pivot field must be stored nowhere else;
* **owner-exclusion monitor** — at every call, a passed value must not be
  the non-null content of a pivot field ``F`` of an object ``X`` (with
  ``rinc(F, A, B)``) when the callee's licence covers ``X·A``.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field as dataclass_field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.errors import InterpError
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    BoolConst,
    Call,
    Choice,
    Cmd,
    Designator,
    Expr,
    FieldAccess,
    Id,
    ImplDecl,
    IntConst,
    NullConst,
    ProcDecl,
    Seq,
    Skip,
    UnOp,
    VarCmd,
)
from repro.oolong.program import Scope
from repro.semantics.inclusion import Location, included_locations
from repro.semantics.store import ObjRef, RuntimeStore, Value


class OutcomeKind(enum.Enum):
    NORMAL = "normal"
    BLOCKED = "blocked"
    WRONG_ASSERT = "assert failed"
    MODIFIES_VIOLATION = "modifies violation"
    PIVOT_VIOLATION = "pivot uniqueness violated"
    OWNER_EXCLUSION_VIOLATION = "owner exclusion violated"
    ERROR = "dynamic error"
    LIMIT = "exploration limit reached"


#: Outcome kinds that count as the computation *going wrong*.
WRONG_KINDS = frozenset(
    {
        OutcomeKind.WRONG_ASSERT,
        OutcomeKind.MODIFIES_VIOLATION,
        OutcomeKind.PIVOT_VIOLATION,
        OutcomeKind.OWNER_EXCLUSION_VIOLATION,
        OutcomeKind.ERROR,
    }
)


@dataclass(frozen=True)
class Outcome:
    """One terminal result of one explored path."""

    kind: OutcomeKind
    detail: str = ""
    trace: Tuple[str, ...] = ()

    @property
    def wrong(self) -> bool:
        return self.kind in WRONG_KINDS


@dataclass
class ExplorationConfig:
    """Budgets and switches for one exploration."""

    max_paths: int = 10000
    max_steps: int = 200000
    max_call_depth: int = 32
    var_candidates: Tuple[Value, ...] = (None,)
    check_modifies: bool = True
    check_pivot_uniqueness: bool = True
    check_owner_exclusion: bool = True


@dataclass(frozen=True)
class _Licence:
    """One frame's write licence, fixed at method entry."""

    proc_name: str
    entry_alive: FrozenSet[int]
    covered: FrozenSet[Location]

    def permits(self, obj: ObjRef, attr: str) -> bool:
        if obj.oid not in self.entry_alive:
            return True
        return (obj, attr) in self.covered


class _Stop(Exception):
    """Internal control flow: a path ended with the carried outcome."""

    def __init__(self, outcome: Outcome):
        self.outcome = outcome


@dataclass
class _State:
    store: RuntimeStore
    env: Dict[str, Value]
    frames: Tuple[_Licence, ...]
    trace: Tuple[str, ...] = ()

    def fork(self) -> "_State":
        return _State(self.store.snapshot(), dict(self.env), self.frames, self.trace)

    def noting(self, note: str) -> "_State":
        self.trace = self.trace + (note,)
        return self


class Interpreter:
    """Explores an oolong program's executions."""

    def __init__(self, scope: Scope, config: Optional[ExplorationConfig] = None):
        from repro.oolong.contracts import desugar_contracts

        # Contracts execute as the paper's assert/assume discipline, so the
        # interpreter checks them at runtime for free.
        self.scope = desugar_contracts(scope)
        self.config = config or ExplorationConfig()
        self._steps = 0
        self._paths = 0

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------

    def explore_call(
        self, proc_name: str, args: Sequence[Value] = (), store: Optional[RuntimeStore] = None
    ) -> List[Outcome]:
        """All outcomes of calling ``proc_name`` with ``args``."""
        self._steps = 0
        self._paths = 0
        proc = self.scope.proc(proc_name)
        if proc is None:
            raise InterpError(f"undeclared procedure {proc_name!r}")
        if len(args) != len(proc.params):
            raise InterpError(
                f"procedure {proc_name!r} takes {len(proc.params)} arguments"
            )
        base = _State(store or RuntimeStore(), {}, ())
        outcomes: List[Outcome] = []
        call = Call(proc_name, tuple(_ValueExpr(v) for v in args))
        for result in self._exec(call, base, 0):
            outcomes.append(self._finish(result))
        return outcomes

    def _finish(self, result) -> Outcome:
        if isinstance(result, Outcome):
            self._paths += 1
            return result
        self._paths += 1
        return Outcome(OutcomeKind.NORMAL, trace=result.trace)

    # ------------------------------------------------------------------
    # Command execution
    # ------------------------------------------------------------------

    def _budget(self, state: _State) -> Optional[Outcome]:
        self._steps += 1
        if self._steps > self.config.max_steps:
            return Outcome(OutcomeKind.LIMIT, "step budget exhausted", state.trace)
        if self._paths > self.config.max_paths:
            return Outcome(OutcomeKind.LIMIT, "path budget exhausted", state.trace)
        return None

    def _exec(self, cmd: Cmd, state: _State, depth: int) -> Iterator:
        """Yield, per completed path, either a final ``_State`` (normal) or
        an ``Outcome`` (blocked / wrong / limit)."""
        over = self._budget(state)
        if over is not None:
            yield over
            return
        try:
            if isinstance(cmd, Skip):
                yield state
            elif isinstance(cmd, Assume):
                if self._truthy(cmd.condition, state):
                    yield state
                else:
                    yield Outcome(OutcomeKind.BLOCKED, str(cmd.condition), state.trace)
            elif isinstance(cmd, Assert):
                if self._truthy(cmd.condition, state):
                    yield state
                else:
                    yield Outcome(
                        OutcomeKind.WRONG_ASSERT,
                        f"assert {cmd.condition} failed",
                        state.trace,
                    )
            elif isinstance(cmd, VarCmd):
                yield from self._exec_var(cmd, state, depth)
            elif isinstance(cmd, Seq):
                for first in self._exec(cmd.first, state, depth):
                    if isinstance(first, Outcome):
                        yield first
                    else:
                        yield from self._exec(cmd.second, first, depth)
            elif isinstance(cmd, Choice):
                left = state.fork().noting("choice:left")
                right = state.fork().noting("choice:right")
                yield from self._exec(cmd.left, left, depth)
                yield from self._exec(cmd.right, right, depth)
            elif isinstance(cmd, Assign):
                yield self._exec_assign(cmd, state)
            elif isinstance(cmd, AssignNew):
                yield self._exec_assign_new(cmd, state)
            elif isinstance(cmd, Call):
                yield from self._exec_call(cmd, state, depth)
            else:
                raise InterpError(f"cannot execute {cmd!r}")
        except _Stop as stop:
            yield stop.outcome

    def _exec_var(self, cmd: VarCmd, state: _State, depth: int) -> Iterator:
        for candidate in self.config.var_candidates:
            child = state.fork()
            child.env[cmd.name] = candidate
            if len(self.config.var_candidates) > 1:
                child.noting(f"var {cmd.name}:={candidate!r}")
            for result in self._exec(cmd.body, child, depth):
                if isinstance(result, Outcome):
                    yield result
                else:
                    result.env.pop(cmd.name, None)
                    yield result

    def _exec_assign(self, cmd: Assign, state: _State) -> _State:
        value = self._eval(cmd.rhs, state)
        return self._store_to_target(cmd.target, value, state)

    def _exec_assign_new(self, cmd: AssignNew, state: _State) -> _State:
        fresh = state.store.allocate()
        return self._store_to_target(cmd.target, fresh, state)

    def _store_to_target(self, target: Expr, value: Value, state: _State) -> _State:
        if isinstance(target, Id):
            state.env[target.name] = value
            return state
        assert isinstance(target, FieldAccess)
        obj = self._eval(target.obj, state)
        if not isinstance(obj, ObjRef):
            raise _Stop(
                Outcome(
                    OutcomeKind.ERROR,
                    f"field write on non-object {obj!r}",
                    state.trace,
                )
            )
        self._check_modifies(obj, target.attr, state)
        state.store.write(obj, target.attr, value)
        self._check_pivot_uniqueness(state)
        return state

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------

    def _licence_for(
        self,
        proc: ProcDecl,
        env: Dict[str, Value],
        store: RuntimeStore,
    ) -> _Licence:
        """Compute a frame's write licence at entry time."""
        covered: set = set()
        snapshot = store.snapshot()
        for designator in proc.modifies:
            owner = env.get(designator.root)
            for field_name in designator.path:
                if not isinstance(owner, ObjRef):
                    owner = None
                    break
                owner = snapshot.read(owner, field_name)
            if isinstance(owner, ObjRef):
                covered |= included_locations(
                    self.scope, snapshot, owner, designator.attr
                )
        entry_alive = frozenset(ref.oid for ref in snapshot.alive_objects())
        return _Licence(proc.name, entry_alive, frozenset(covered))

    def _exec_call(self, cmd: Call, state: _State, depth: int) -> Iterator:
        if depth >= self.config.max_call_depth:
            yield Outcome(OutcomeKind.LIMIT, "call depth exceeded", state.trace)
            return
        proc = self.scope.proc(cmd.proc)
        if proc is None:
            raise InterpError(f"call to undeclared procedure {cmd.proc!r}")
        impls = self.scope.impls_of(cmd.proc)
        if not impls:
            raise InterpError(
                f"no implementation of {cmd.proc!r} available to execute"
            )
        args = [self._eval(arg, state) for arg in cmd.args]
        callee_env = dict(zip(proc.params, args))
        licence = self._licence_for(proc, callee_env, state.store)
        self._check_owner_exclusion(cmd.proc, args, licence, state)
        for index, impl in enumerate(impls):
            child = state.fork()
            if len(impls) > 1:
                child.noting(f"dispatch:{cmd.proc}#{index}")
            child.env = dict(zip(impl.params, args))
            child.frames = state.frames + (licence,)
            for result in self._exec(impl.body, child, depth + 1):
                if isinstance(result, Outcome):
                    yield result
                else:
                    # Return to the caller's environment and frame stack.
                    result.env = dict(state.env)
                    result.frames = state.frames
                    yield result

    # ------------------------------------------------------------------
    # Monitors
    # ------------------------------------------------------------------

    def _check_modifies(self, obj: ObjRef, attr: str, state: _State) -> None:
        if not self.config.check_modifies:
            return
        for licence in state.frames:
            if not licence.permits(obj, attr):
                raise _Stop(
                    Outcome(
                        OutcomeKind.MODIFIES_VIOLATION,
                        f"write to {obj!r}.{attr} not licensed by frame "
                        f"{licence.proc_name}",
                        state.trace,
                    )
                )

    def _check_pivot_uniqueness(self, state: _State) -> None:
        if not self.config.check_pivot_uniqueness:
            return
        pivots = {decl.name for decl in self.scope.pivot_fields()}
        if not pivots:
            return
        locations = state.store.written_locations()
        values: Dict[int, Tuple[ObjRef, str]] = {}
        for holder, field_name in locations:
            value = state.store.read(holder, field_name)
            if not isinstance(value, ObjRef):
                continue
            if field_name in pivots:
                for other_holder, other_field in locations:
                    if (other_holder, other_field) == (holder, field_name):
                        continue
                    if state.store.read(other_holder, other_field) == value:
                        raise _Stop(
                            Outcome(
                                OutcomeKind.PIVOT_VIOLATION,
                                f"pivot value {value!r} stored both at "
                                f"{holder!r}.{field_name} and "
                                f"{other_holder!r}.{other_field}",
                                state.trace,
                            )
                        )

    def _check_owner_exclusion(
        self,
        callee: str,
        args: Sequence[Value],
        licence: _Licence,
        state: _State,
    ) -> None:
        if not self.config.check_owner_exclusion:
            return
        for value in args:
            if not isinstance(value, ObjRef):
                continue
            for holder in state.store.alive_objects():
                for pivot in self.scope.pivot_fields():
                    if state.store.read(holder, pivot.name) != value:
                        continue
                    for group, _mapped in self.scope.rep_pairs(pivot.name):
                        if (holder, group) in licence.covered:
                            raise _Stop(
                                Outcome(
                                    OutcomeKind.OWNER_EXCLUSION_VIOLATION,
                                    f"pivot value {value!r} of {holder!r}."
                                    f"{pivot.name} passed to {callee}, which "
                                    f"may modify {holder!r}.{group}",
                                    state.trace,
                                )
                            )

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------

    def _truthy(self, expr: Expr, state: _State) -> bool:
        value = self._eval(expr, state)
        if not isinstance(value, bool):
            raise _Stop(
                Outcome(
                    OutcomeKind.ERROR,
                    f"condition {expr} evaluated to non-boolean {value!r}",
                    state.trace,
                )
            )
        return value

    def _eval(self, expr: Expr, state: _State) -> Value:
        if isinstance(expr, _ValueExpr):
            return expr.value
        if isinstance(expr, NullConst):
            return None
        if isinstance(expr, BoolConst):
            return expr.value
        if isinstance(expr, IntConst):
            return expr.value
        if isinstance(expr, Id):
            if expr.name not in state.env:
                raise InterpError(f"unbound variable {expr.name!r}")
            return state.env[expr.name]
        if isinstance(expr, FieldAccess):
            obj = self._eval(expr.obj, state)
            if not isinstance(obj, ObjRef):
                raise _Stop(
                    Outcome(
                        OutcomeKind.ERROR,
                        f"field read on non-object {obj!r}",
                        state.trace,
                    )
                )
            return state.store.read(obj, expr.attr)
        if isinstance(expr, BinOp):
            return self._eval_binop(expr, state)
        if isinstance(expr, UnOp):
            return self._eval_unop(expr, state)
        raise InterpError(f"cannot evaluate {expr!r}")

    def _eval_binop(self, expr: BinOp, state: _State) -> Value:
        if expr.op == "&&":
            return self._truthy(expr.left, state) and self._truthy(expr.right, state)
        if expr.op == "||":
            return self._truthy(expr.left, state) or self._truthy(expr.right, state)
        left = self._eval(expr.left, state)
        right = self._eval(expr.right, state)
        if expr.op == "=":
            return left == right
        if expr.op == "!=":
            return left != right
        if expr.op in ("<", "<=", ">", ">=", "+", "-", "*"):
            if not isinstance(left, int) or not isinstance(right, int) or (
                isinstance(left, bool) or isinstance(right, bool)
            ):
                raise _Stop(
                    Outcome(
                        OutcomeKind.ERROR,
                        f"arithmetic on non-integers: {left!r} {expr.op} {right!r}",
                        state.trace,
                    )
                )
            table = {
                "<": left < right,
                "<=": left <= right,
                ">": left > right,
                ">=": left >= right,
                "+": left + right,
                "-": left - right,
                "*": left * right,
            }
            return table[expr.op]
        raise InterpError(f"unknown operator {expr.op!r}")

    def _eval_unop(self, expr: UnOp, state: _State) -> Value:
        if expr.op == "!":
            return not self._truthy(expr.operand, state)
        value = self._eval(expr.operand, state)
        if isinstance(value, bool) or not isinstance(value, int):
            raise _Stop(
                Outcome(
                    OutcomeKind.ERROR,
                    f"negation of non-integer {value!r}",
                    state.trace,
                )
            )
        return -value


@dataclass(frozen=True)
class _ValueExpr(Expr):
    """An already-evaluated argument injected into a synthetic call."""

    value: Value = None


def explore_program(
    scope: Scope,
    entry: str,
    args: Sequence[Value] = (),
    config: Optional[ExplorationConfig] = None,
) -> List[Outcome]:
    """Explore all executions of ``entry(args)`` in a fresh store."""
    return Interpreter(scope, config).explore_call(entry, args)
