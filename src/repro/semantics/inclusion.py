"""Runtime computation of the main inclusion relation.

``included_locations(scope, store, obj, attr)`` computes the set of
locations included in ``obj·attr`` in the given store — the operational
counterpart of the paper's store-dependent inclusion relation (axiom (4)).

The closure rules, read off the inclusion connection:

* ``obj·attr`` includes ``obj·b`` for every attribute ``b`` locally
  included in ``attr`` (``attr ≽ b``), including ``attr`` itself;
* if ``obj·attr`` includes ``z·g`` and the scope declares
  ``field f maps b into g`` (``g —f→ b``), then it also includes
  ``S(z·f)·b`` and its closure.

The BFS terminates because the store is finite; cyclic rep inclusions
(the linked list's ``g —next→ g``) just revisit seen locations.
"""

from __future__ import annotations

from typing import FrozenSet, List, Set, Tuple

from repro.oolong.program import Scope
from repro.semantics.store import ObjRef, RuntimeStore

Location = Tuple[ObjRef, str]


def included_locations(
    scope: Scope,
    store: RuntimeStore,
    obj: ObjRef,
    attr: str,
) -> FrozenSet[Location]:
    """All locations included in ``obj·attr`` in ``store``."""
    result: Set[Location] = set()
    frontier: List[Location] = [(obj, attr)]
    while frontier:
        location = frontier.pop()
        if location in result:
            continue
        result.add(location)
        holder, group = location
        # Local inclusions: every attribute locally included in `group`.
        for name in scope.attribute_names():
            if name != group and scope.local_includes(group, name):
                frontier.append((holder, name))
        # Rep inclusions rooted exactly at `group`: follow the pivot.
        for field_decl in scope.pivot_fields():
            for into_group, mapped in scope.rep_pairs(field_decl.name):
                if into_group == group:
                    target = store.read(holder, field_decl.name)
                    if isinstance(target, ObjRef):
                        frontier.append((target, mapped))
    return frozenset(result)


def location_covered(
    scope: Scope,
    store: RuntimeStore,
    owner: ObjRef,
    owner_attr: str,
    target: ObjRef,
    target_attr: str,
) -> bool:
    """Does ``owner·owner_attr`` include ``target·target_attr``?"""
    return (target, target_attr) in included_locations(
        scope, store, owner, owner_attr
    )
