"""The runtime object store.

Objects are numbered in allocation order and wrapped in :class:`ObjRef` so
they cannot be confused with integer values. Every object possesses every
field (oolong is untyped); unwritten fields read as ``null`` (``None``),
which keeps the pivot-uniqueness store invariant true for fresh objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set, Tuple, Union

#: Runtime values: null is None; booleans and ints are themselves.
Value = Union[None, bool, int, "ObjRef"]


@dataclass(frozen=True)
class ObjRef:
    """A reference to an allocated object."""

    oid: int

    def __repr__(self) -> str:
        return f"obj#{self.oid}"


class RuntimeStore:
    """A mutable object store with allocation tracking and snapshots."""

    def __init__(self):
        self._next_oid = 0
        self._alive: Set[int] = set()
        self._fields: Dict[Tuple[int, str], Value] = {}

    def allocate(self) -> ObjRef:
        """Allocate a fresh object; all its fields read as null."""
        ref = ObjRef(self._next_oid)
        self._next_oid += 1
        self._alive.add(ref.oid)
        return ref

    def is_alive(self, value: Value) -> bool:
        return isinstance(value, ObjRef) and value.oid in self._alive

    def alive_objects(self) -> Tuple[ObjRef, ...]:
        return tuple(ObjRef(oid) for oid in sorted(self._alive))

    def read(self, obj: ObjRef, field: str) -> Value:
        return self._fields.get((obj.oid, field))

    def write(self, obj: ObjRef, field: str, value: Value) -> None:
        self._fields[(obj.oid, field)] = value

    def written_locations(self) -> Tuple[Tuple[ObjRef, str], ...]:
        return tuple(
            (ObjRef(oid), field) for (oid, field) in sorted(self._fields)
        )

    def snapshot(self) -> "RuntimeStore":
        """An independent copy (used for entry stores and branching)."""
        copy = RuntimeStore()
        copy._next_oid = self._next_oid
        copy._alive = set(self._alive)
        copy._fields = dict(self._fields)
        return copy

    def __repr__(self) -> str:
        return (
            f"RuntimeStore(alive={sorted(self._alive)}, "
            f"fields={len(self._fields)})"
        )
