"""Operational semantics for oolong: a nondeterministic interpreter.

The interpreter explores every resolution of oolong's demonic choices
(``[]``, implementation dispatch, and configurable initial values for
``var``) up to a budget, and reports the set of reachable outcomes:
normal termination, blocking (a failed ``assume``), or *going wrong* (a
failed ``assert``).

Three runtime monitors mirror the static system and make the paper's
soundness claims empirically testable:

* a **modifies monitor** — every field write must be covered by the
  modifies licence of every active frame, evaluated (like the static
  semantics) against the frame's entry store;
* a **pivot-uniqueness monitor** — the store invariant behind the paper's
  axiom (6);
* an **owner-exclusion monitor** — the call-site restriction of
  Section 3.1.

Monitors can be switched off individually, which is how the baseline
experiments exhibit the runtime failures that the restrictions (and only
the restrictions) prevent.
"""

from repro.semantics.interp import (
    ExplorationConfig,
    Interpreter,
    Outcome,
    OutcomeKind,
    explore_program,
)
from repro.semantics.inclusion import included_locations
from repro.semantics.store import ObjRef, RuntimeStore

__all__ = [
    "ExplorationConfig",
    "Interpreter",
    "ObjRef",
    "Outcome",
    "OutcomeKind",
    "RuntimeStore",
    "explore_program",
    "included_locations",
]
