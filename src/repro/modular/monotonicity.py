"""Empirical scope-monotonicity checking.

``check_monotonicity(base, extension)`` verifies every implementation of
the *base* scope twice — once against BP_base, once against BP_(base ∪
extension) — and reports any implementation that was verified in the small
scope but fails in the large one. With the paper's system the report must
be empty; the Section 3 counter-scenarios (checked through the naive
baseline, which drops the alias-confinement restrictions) are exactly the
programs that witness violations without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.oolong.ast import Decl, ImplDecl
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits, Verdict
from repro.vcgen.vc import vc_for_impl


@dataclass
class MonotonicityResult:
    """Verdict pair for one implementation."""

    impl_name: str
    impl_index: int
    base_verdict: Verdict
    extended_verdict: Verdict

    @property
    def violates(self) -> bool:
        """A monotonicity violation: valid in D, invalid in E ⊇ D."""
        return (
            self.base_verdict is Verdict.UNSAT
            and self.extended_verdict is Verdict.SAT
        )


@dataclass
class MonotonicityReport:
    results: List[MonotonicityResult] = field(default_factory=list)

    @property
    def violations(self) -> List[MonotonicityResult]:
        return [r for r in self.results if r.violates]

    @property
    def monotone(self) -> bool:
        return not self.violations


def check_monotonicity(
    base: Scope,
    extension: Sequence[Decl],
    limits: Optional[Limits] = None,
) -> MonotonicityReport:
    """Compare verification of ``base``'s impls in D vs E = D + extension."""
    check_well_formed(base)
    extended = base.extend(extension)
    check_well_formed(extended)
    from repro.oolong.contracts import desugar_contracts

    base = desugar_contracts(base)
    extended = desugar_contracts(extended)
    report = MonotonicityReport()
    for impls in base.impls.values():
        for index, impl in enumerate(impls):
            base_result = vc_for_impl(base, impl).prove(limits)
            extended_result = vc_for_impl(extended, impl).prove(limits)
            report.results.append(
                MonotonicityResult(
                    impl_name=impl.name,
                    impl_index=index,
                    base_verdict=base_result.verdict,
                    extended_verdict=extended_result.verdict,
                )
            )
    return report
