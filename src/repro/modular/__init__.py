"""Modular soundness: the scope-monotonicity experiment harness.

The paper's central meta-claim: with the formalization of Section 4,
verification is *scope monotone* — if an implementation's VC is valid in a
scope D, it stays valid in every extension E of D, because extensions only
add background axioms (BP_D ⊆ BP_E) while the wlp side is extension
insensitive.

:mod:`repro.modular.monotonicity` checks this empirically, and also runs
the *naive* baseline (which ignores the restrictions) to exhibit the
monotonicity violations of Sections 3.0 and 3.1.
"""

from repro.modular.modules import Module, ModuleSystem
from repro.modular.monotonicity import (
    MonotonicityReport,
    MonotonicityResult,
    check_monotonicity,
)

__all__ = [
    "Module",
    "ModuleSystem",
    "MonotonicityReport",
    "MonotonicityResult",
    "check_monotonicity",
]
