"""Interface/implementation modules and per-module checking scopes.

The paper (Section 2): "In oolong, a module is just a set of declarations.
... the declarations available in the public interface of a module form a
subset of the declarations available in the private implementation of the
module"; and (Section 4) "the scope of an implementation module M would
typically be the set of declarations in M and in the interface modules
that M transitively imports."

:class:`ModuleSystem` realizes that structure: each module has a public
*interface* (declarations visible to importers — no implementations
allowed), a private *implementation* (extra declarations plus the
``impl``s), and a list of imported modules. Checking a module verifies its
implementations against exactly its implementation scope — the modular
checking discipline of the paper. ``check_all`` is therefore piecewise
checking of the whole program; by scope monotonicity its verdicts remain
valid for the linked program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import WellFormednessError
from repro.oolong.ast import Decl, ImplDecl
from repro.oolong.parser import parse_program_text
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import CheckReport, check_scope


@dataclass(frozen=True)
class Module:
    """One module: a public interface, a private implementation, imports."""

    name: str
    interface: Tuple[Decl, ...] = ()
    implementation: Tuple[Decl, ...] = ()
    imports: Tuple[str, ...] = ()

    def __post_init__(self):
        for decl in self.interface:
            if isinstance(decl, ImplDecl):
                raise WellFormednessError(
                    f"module {self.name!r}: interfaces may not contain "
                    f"implementations (impl {decl.name!r})"
                )


class ModuleSystem:
    """A set of named modules with import-based scope construction."""

    def __init__(self):
        self._modules: Dict[str, Module] = {}

    def add(self, module: Module) -> Module:
        if module.name in self._modules:
            raise WellFormednessError(f"duplicate module {module.name!r}")
        self._modules[module.name] = module
        return module

    def define(
        self,
        name: str,
        *,
        interface: str = "",
        implementation: str = "",
        imports: Sequence[str] = (),
    ) -> Module:
        """Convenience constructor from oolong source texts."""
        return self.add(
            Module(
                name=name,
                interface=parse_program_text(interface),
                implementation=parse_program_text(implementation),
                imports=tuple(imports),
            )
        )

    def module(self, name: str) -> Module:
        module = self._modules.get(name)
        if module is None:
            raise WellFormednessError(f"unknown module {name!r}")
        return module

    def modules(self) -> Tuple[str, ...]:
        return tuple(self._modules)

    # -- scope construction ----------------------------------------------

    def _transitive_imports(self, name: str) -> List[str]:
        """Imported module names, depth-first, each once, cycles rejected."""
        order: List[str] = []
        visiting: List[str] = []

        def visit(current: str) -> None:
            if current in order:
                return
            if current in visiting:
                cycle = " -> ".join(visiting + [current])
                raise WellFormednessError(f"import cycle: {cycle}")
            visiting.append(current)
            for imported in self.module(current).imports:
                visit(imported)
            visiting.pop()
            order.append(current)

        visit(name)
        order.pop()  # drop `name` itself
        return order

    def interface_scope(self, name: str) -> Scope:
        """The client view: this module's interface plus everything it
        transitively imports."""
        decls: List[Decl] = []
        for imported in self._transitive_imports(name):
            decls.extend(self.module(imported).interface)
        decls.extend(self.module(name).interface)
        return Scope(decls)

    def implementation_scope(self, name: str) -> Scope:
        """The checking view: the interface scope plus the module's private
        declarations and implementations."""
        scope = self.interface_scope(name)
        return scope.extend(self.module(name).implementation)

    def whole_program_scope(self) -> Scope:
        """All declarations of all modules (the linked program; used by the
        interpreter and by monotonicity comparisons)."""
        decls: List[Decl] = []
        seen: List[str] = []
        for name in self._modules:
            for imported in self._transitive_imports(name) + [name]:
                if imported not in seen:
                    seen.append(imported)
                    module = self.module(imported)
                    decls.extend(module.interface)
                    decls.extend(module.implementation)
        return Scope(decls)

    # -- checking ------------------------------------------------------------

    def check_module(
        self, name: str, limits: Optional[Limits] = None
    ) -> CheckReport:
        """Modularly check one module's implementations in its own scope."""
        scope = self.implementation_scope(name)
        check_well_formed(scope)
        return check_scope(scope, limits)

    def check_all(
        self, limits: Optional[Limits] = None
    ) -> Dict[str, CheckReport]:
        """Piecewise-check every module; the paper's modular discipline."""
        return {name: self.check_module(name, limits) for name in self._modules}
