"""Exception hierarchy shared by every repro subsystem.

All user-facing failures derive from :class:`ReproError` so callers can
catch one type. Each subsystem raises the most specific subclass and attaches
a source position when one is available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class SourcePosition:
    """A 1-based line/column position in an oolong source text.

    ``file`` names the source the position refers to (``None`` for
    anonymous texts). It is excluded from equality so programmatically
    built positions compare equal to parsed ones regardless of origin.
    """

    line: int
    column: int
    file: Optional[str] = field(default=None, compare=False)

    def __str__(self) -> str:
        if self.file is not None:
            return f"{self.file}:{self.line}:{self.column}"
        return f"{self.line}:{self.column}"


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""

    def __init__(self, message: str, position: Optional[SourcePosition] = None):
        self.message = message
        self.position = position
        super().__init__(self._format())

    def _format(self) -> str:
        if self.position is not None:
            return f"{self.position}: {self.message}"
        return self.message


class LexError(ReproError):
    """Raised by the lexer on malformed input characters or literals."""


class ParseError(ReproError):
    """Raised by the parser on grammar violations."""


class WellFormednessError(ReproError):
    """Raised when a scope violates oolong's static well-formedness rules.

    Covers duplicate names, undeclared references (the rule of
    self-contained names), cyclic group inclusions, and malformed modifies
    lists.
    """


class RestrictionError(ReproError):
    """Raised when a program violates the pivot uniqueness restriction."""


class VerificationError(ReproError):
    """Raised when verification-condition generation itself fails.

    (A VC that is merely *invalid* is reported as a verdict, not raised.)
    """


class InterpError(ReproError):
    """Raised by the interpreter on dynamic errors other than going wrong.

    "Going wrong" (a failed ``assert`` or a modifies violation) is reported
    as an outcome; this exception covers genuine misuse such as calling an
    undeclared procedure.
    """


class ProverError(ReproError):
    """Raised on internal prover failures (never on mere non-proofs)."""
