"""Weakest liberal preconditions for oolong commands (Figures 2 and 3).

``wlp(cmd, post)`` is computed backwards over the command structure. The
current store is the free variable ``$``; store-changing commands
substitute it. The entry store ``$0`` — against which the method's own
modifies list is evaluated, per the paper's "what is allowed to be
modified ... is determined by the method's declared modifies list evaluated
using the values of pivot fields on entry" — is a constant supplied by the
context.

Conjunct order is load-bearing: the refutation engine negates the goal in
*ordered* form, so obligations listed earlier (e.g. a call's owner-exclusion
check) may be assumed while refuting later ones (e.g. a subsequent assert) —
mirroring the paper's hand proofs.

Allocation commands substitute the store and target *simultaneously*
(``x := new()`` yields ``post[x := new($), $ := succ($)]``), which is the
operationally correct reading of the paper's substitution chain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import VerificationError
from repro.logic.terms import (
    App,
    Eq,
    Forall,
    Formula,
    Implies,
    Term,
    TrueF,
    Var,
    conj,
    disj,
)
from repro.logic.subst import subst_formula
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    Call,
    Choice,
    Cmd,
    Designator,
    FieldAccess,
    Id,
    ProcDecl,
    Seq,
    Skip,
    SourcePosition,
    VarCmd,
)
from repro.oolong.program import Scope
from repro.vcgen.translate import (
    TranslationContext,
    mod_formula,
    own_excl_formula,
    tr_designator_prefix,
    tr_formula,
    tr_term,
    welldef_premises,
)
from repro.vcgen.vocab import (
    ALIVE,
    SEL,
    alive,
    alive_t,
    attr_const,
    new,
    sel,
    store_var,
    succ,
    upd,
)


from repro.logic.terms import OBLIGATION_MARKER


@dataclass(frozen=True)
class ObligationInfo:
    """What one proof obligation is about, for failure reporting.

    Beyond the human-readable ``description``, the structured fields
    carry what the explanation layer (:mod:`repro.obs.explain`) needs to
    anchor blame without re-deriving the wlp: the source position of the
    offending command, the written location, and the modifies-list
    entries the licence was checked against.
    """

    ident: int
    kind: str
    description: str
    #: Source position of the command that raised the obligation.
    position: Optional["SourcePosition"] = None
    #: The location being written / checked, as source text (``t.f``).
    target: Optional[str] = None
    #: The attribute of that location (the ``f`` of ``t.f``).
    attr: Optional[str] = None
    #: The modifies-list entries the licence was checked against, as
    #: source text, in declaration order.
    modifies: Tuple[str, ...] = ()
    #: For call obligations: the callee's name …
    callee: Optional[str] = None
    #: … and, for owner exclusion, the 1-based argument position.
    arg_index: Optional[int] = None

    def __str__(self) -> str:
        return f"{self.kind}: {self.description}"

    def to_dict(self) -> dict:
        return {
            "ident": self.ident,
            "kind": self.kind,
            "description": self.description,
            "position": str(self.position) if self.position else None,
            "target": self.target,
            "attr": self.attr,
            "modifies": list(self.modifies),
            "callee": self.callee,
            "arg_index": self.arg_index,
        }


@dataclass
class WlpContext:
    """Everything wlp needs about the implementation being verified.

    ``owner_exclusion=False`` drops the call-site owner-exclusion checks —
    used only by the unsound naive baseline of the Section 3 experiments.

    ``obligations`` registers the proof obligations in emission order; each
    obligation conjunct is tagged with an inert marker atom so a failed
    proof can name the obligation it got stuck on (the highest-numbered
    marker asserted in the saturated branch, thanks to the ordered goal
    negation).
    """

    scope: Scope
    proc: ProcDecl
    ctx: TranslationContext
    entry_store: Term
    owner_exclusion: bool = True
    obligations: "List[ObligationInfo]" = None

    def __post_init__(self):
        if self.obligations is None:
            self.obligations = []

    @property
    def self_modifies(self) -> Tuple[Designator, ...]:
        return self.proc.modifies

    @property
    def self_env(self) -> Dict[str, Term]:
        return {p: self.ctx.env[p] for p in self.proc.params}

    def obligation(
        self, kind: str, description: str, formula: Formula, **details
    ) -> Formula:
        """Tag ``formula`` as a numbered proof obligation.

        ``details`` are the structured :class:`ObligationInfo` fields
        (``position``, ``target``, ``attr``, ``modifies``, ``callee``,
        ``arg_index``) consumed by the explanation layer.
        """
        from repro.logic.terms import IntLit, Pred

        from repro.logic.terms import And

        ident = len(self.obligations)
        self.obligations.append(
            ObligationInfo(ident, kind, description, **details)
        )
        marker = Pred(OBLIGATION_MARKER, (IntLit(ident),))
        # A raw And, not conj(): folding must not absorb the marker when
        # the obligation is literally false (e.g. `assert false`).
        return And((marker, formula))


def wlp(cmd: Cmd, post: Formula, wctx: WlpContext) -> Formula:
    """``wlp_{w,$0}(cmd, post)`` with the current store as free ``$``.

    Every command that evaluates expressions is guarded by the blocking
    well-definedness assumption of those expressions (dereferenced values
    are non-null and allocated) — see ``welldef_premises``.
    """
    store = store_var()
    if isinstance(cmd, Assert):
        where = f"assert {cmd.condition}" + (
            f" at {cmd.position}" if cmd.position else ""
        )
        tagged = wctx.obligation(
            "assert",
            where,
            tr_formula(cmd.condition, store, wctx.ctx),
            position=cmd.position,
            target=str(cmd.condition),
        )
        core = conj((tagged, post))
        return _guard((cmd.condition,), core, wctx)
    if isinstance(cmd, Assume):
        core = Implies(tr_formula(cmd.condition, store, wctx.ctx), post)
        return _guard((cmd.condition,), core, wctx)
    if isinstance(cmd, Skip):
        return post
    if isinstance(cmd, VarCmd):
        saved = wctx.ctx.env.get(cmd.name)
        wctx.ctx.env[cmd.name] = Var(cmd.name)
        body = wlp(cmd.body, post, wctx)
        if saved is None:
            del wctx.ctx.env[cmd.name]
        else:  # pragma: no cover - shadowing is rejected by well-formedness
            wctx.ctx.env[cmd.name] = saved
        return Forall((cmd.name,), body)
    if isinstance(cmd, Seq):
        return wlp(cmd.first, wlp(cmd.second, post, wctx), wctx)
    if isinstance(cmd, Choice):
        return conj((wlp(cmd.left, post, wctx), wlp(cmd.right, post, wctx)))
    if isinstance(cmd, Assign):
        return _wlp_assign(cmd, post, wctx)
    if isinstance(cmd, AssignNew):
        return _wlp_assign_new(cmd, post, wctx)
    if isinstance(cmd, Call):
        return _wlp_call(cmd, post, wctx)
    raise VerificationError(f"wlp undefined for {cmd!r}")


def _guard(exprs, core: Formula, wctx: WlpContext) -> Formula:
    """Wrap ``core`` in the well-definedness assumption of ``exprs``."""
    premise = welldef_premises(exprs, store_var(), wctx.ctx)
    if isinstance(premise, TrueF):
        return core
    return Implies(premise, core)


def _target_var_name(target) -> str:
    assert isinstance(target, Id)
    return target.name


def _wlp_assign(cmd: Assign, post: Formula, wctx: WlpContext) -> Formula:
    store = store_var()
    rhs = tr_term(cmd.rhs, store, wctx.ctx)
    if isinstance(cmd.target, Id):
        core = subst_formula(post, {_target_var_name(cmd.target): rhs})
        return _guard((cmd.rhs,), core, wctx)
    assert isinstance(cmd.target, FieldAccess)
    obj = tr_term(cmd.target.obj, store, wctx.ctx)
    attr = attr_const(cmd.target.attr)
    licence = wctx.obligation(
        "write-licence",
        f"write to {cmd.target}" + (f" at {cmd.position}" if cmd.position else ""),
        mod_formula(obj, attr, wctx.self_modifies, wctx.self_env, wctx.entry_store),
        position=cmd.position,
        target=str(cmd.target),
        attr=cmd.target.attr,
        modifies=tuple(str(d) for d in wctx.self_modifies),
    )
    updated = subst_formula(post, {"$": upd(store, obj, attr, rhs)})
    # Guard on the whole target: writing t.f dereferences t.
    return _guard((cmd.target, cmd.rhs), conj((licence, updated)), wctx)


def _wlp_assign_new(cmd: AssignNew, post: Formula, wctx: WlpContext) -> Formula:
    store = store_var()
    if isinstance(cmd.target, Id):
        mapping = {
            _target_var_name(cmd.target): new(store),
            "$": succ(store),
        }
        return subst_formula(post, mapping)
    assert isinstance(cmd.target, FieldAccess)
    obj = tr_term(cmd.target.obj, store, wctx.ctx)
    attr = attr_const(cmd.target.attr)
    licence = wctx.obligation(
        "write-licence",
        f"allocation into {cmd.target}"
        + (f" at {cmd.position}" if cmd.position else ""),
        mod_formula(obj, attr, wctx.self_modifies, wctx.self_env, wctx.entry_store),
        position=cmd.position,
        target=str(cmd.target),
        attr=cmd.target.attr,
        modifies=tuple(str(d) for d in wctx.self_modifies),
    )
    updated = subst_formula(
        post, {"$": upd(succ(store), obj, attr, new(store))}
    )
    return _guard((cmd.target,), conj((licence, updated)), wctx)


def _wlp_call(cmd: Call, post: Formula, wctx: WlpContext) -> Formula:
    """Figure 3: caller licence, owner exclusion, and the frame quantifier."""
    store = store_var()
    callee = wctx.scope.proc(cmd.proc)
    if callee is None:
        raise VerificationError(f"call to undeclared procedure {cmd.proc!r}")
    actuals = [tr_term(arg, store, wctx.ctx) for arg in cmd.args]
    callee_env: Dict[str, Term] = dict(zip(callee.params, actuals))
    conjuncts: List[Formula] = []

    # 1. Everything the callee may touch, the caller must be allowed to
    #    touch: mod(tr(E)·f, w, $0) for each E.f in ws.
    where = f"call {cmd.proc}" + (f" at {cmd.position}" if cmd.position else "")
    for designator in callee.modifies:
        owner = tr_designator_prefix(designator, callee_env, store)
        conjuncts.append(
            wctx.obligation(
                "call-licence",
                f"{where}: callee may modify {designator}",
                mod_formula(
                    owner,
                    attr_const(designator.attr),
                    wctx.self_modifies,
                    wctx.self_env,
                    wctx.entry_store,
                ),
                position=cmd.position,
                target=str(designator),
                attr=designator.attr,
                modifies=tuple(str(d) for d in wctx.self_modifies),
                callee=cmd.proc,
            )
        )

    # 2. Owner exclusion for every actual parameter, in the current store.
    if wctx.owner_exclusion:
        for index, actual in enumerate(actuals):
            own = own_excl_formula(
                actual, callee.modifies, callee_env, store, wctx.ctx.fresh
            )
            if not isinstance(own, TrueF):
                conjuncts.append(
                    wctx.obligation(
                        "owner-exclusion",
                        f"{where}: argument #{index + 1} ({cmd.args[index]})",
                        own,
                        position=cmd.position,
                        target=str(cmd.args[index]),
                        modifies=tuple(str(d) for d in callee.modifies),
                        callee=cmd.proc,
                        arg_index=index + 1,
                    )
                )

    # 3. The frame: allocation grows monotonically and every surviving
    #    location is unchanged or covered by the callee's modifies list.
    fresh = wctx.ctx.fresh
    post_store = Var(fresh.fresh("$post"))
    obj_var = Var(fresh.fresh("frX"))
    attr_var = Var(fresh.fresh("frF"))
    alive_frame = Forall(
        (obj_var.name,),
        Implies(alive(store, obj_var), alive(post_store, obj_var)),
        (
            (alive_t(store, obj_var),),
            (alive_t(post_store, obj_var),),
        ),
        "call-frame-alive",
        1,
    )
    sel_frame = Forall(
        (obj_var.name, attr_var.name),
        disj(
            (
                Eq(
                    sel(store, obj_var, attr_var),
                    sel(post_store, obj_var, attr_var),
                ),
                mod_formula(
                    obj_var, attr_var, callee.modifies, callee_env, store
                ),
            )
        ),
        (
            (App(SEL, (post_store, obj_var, attr_var)),),
            (App(SEL, (store, obj_var, attr_var)),),
        ),
        "call-frame-sel",
        3,
    )
    shifted_post = subst_formula(post, {"$": post_store})
    conjuncts.append(
        Forall(
            (post_store.name,),
            Implies(conj((alive_frame, sel_frame)), shifted_post),
        )
    )
    return _guard(cmd.args, conj(conjuncts), wctx)
