"""The end-to-end modular checker driver.

``check_scope`` runs the full pipeline the paper's checker implements:

1. well-formedness (self-contained names, acyclic local inclusions);
2. the syntactic pivot-uniqueness restriction;
3. per-implementation VC generation and mechanical proof.

Owner exclusion needs no separate pass: it is embedded in every call's
verification condition and assumed on entry via ``Init``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.analysis.diagnostics import Diagnostic, Severity
from repro.oolong.ast import ImplDecl
from repro.oolong.contracts import desugar_contracts
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits, ProverStats, Verdict
from repro.restrictions.pivot import PivotViolation, check_pivot_uniqueness
from repro.vcgen.vc import vc_for_impl
from repro.vcgen.wlp import ObligationInfo


class ImplStatus(enum.Enum):
    """Outcome of checking one implementation."""

    VERIFIED = "verified"
    NOT_PROVED = "not proved"
    RESOURCE_OUT = "resource limit exceeded"


@dataclass
class ImplVerdict:
    """The checker's verdict for a single implementation."""

    impl: ImplDecl
    index: int
    status: ImplStatus
    stats: ProverStats
    failed_obligation: Optional[ObligationInfo] = None

    @property
    def ok(self) -> bool:
        return self.status is ImplStatus.VERIFIED

    def describe(self) -> str:
        text = f"impl {self.impl.name}#{self.index}: {self.status.value}"
        if self.failed_obligation is not None:
            text += f" — stuck on {self.failed_obligation}"
        return text


@dataclass
class CheckReport:
    """Everything ``check_scope`` found.

    ``diagnostics`` holds the lint/inference findings of the static
    analysis pre-filter (``OL110``/``OL2xx``/``OL3xx``). They are
    advisory: ``ok`` is decided by the restriction pass and the prover
    verdicts alone (an ``OL301`` missing licence surfaces as a failed
    proof anyway).
    """

    pivot_violations: List[PivotViolation] = field(default_factory=list)
    verdicts: List[ImplVerdict] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.pivot_violations and all(v.ok for v in self.verdicts)

    def verdict_for(self, proc_name: str, index: int = 0) -> Optional[ImplVerdict]:
        matching = [v for v in self.verdicts if v.impl.name == proc_name]
        if index < len(matching):
            return matching[index]
        return None

    def worst_diagnostic_severity(self) -> Optional[Severity]:
        from repro.analysis.diagnostics import max_severity

        return max_severity(self.diagnostics)

    def describe(self, *, stats: bool = False) -> str:
        """The canonical text report (the CLI prints exactly this).

        ``stats=True`` appends per-implementation prover counters to each
        verdict line.
        """
        lines: List[str] = []
        for violation in self.pivot_violations:
            lines.append(f"restriction violation: {violation}")
        for diagnostic in self.diagnostics:
            lines.append(str(diagnostic))
        for verdict in self.verdicts:
            line = verdict.describe()
            if stats:
                counters = verdict.stats
                line += (
                    f"  [instances={counters.instantiations}"
                    f" branches={counters.branches}"
                    f" rounds={counters.rounds}"
                    f" time={counters.elapsed:.2f}s]"
                )
            lines.append(line)
        lines.append("OK" if self.ok else "FAILED")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A machine-readable rendering (used by ``--format json``)."""
        return {
            "ok": self.ok,
            "elapsed": round(self.elapsed, 6),
            "restriction_violations": [
                violation.to_diagnostic().to_dict()
                for violation in self.pivot_violations
            ],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "verdicts": [
                {
                    "impl": verdict.impl.name,
                    "index": verdict.index,
                    "status": verdict.status.value,
                    "failed_obligation": (
                        str(verdict.failed_obligation)
                        if verdict.failed_obligation is not None
                        else None
                    ),
                }
                for verdict in self.verdicts
            ],
        }


def check_scope(
    scope: Scope,
    limits: Optional[Limits] = None,
    *,
    enforce_restrictions: bool = True,
    lint: bool = True,
) -> CheckReport:
    """Check every implementation in ``scope``.

    ``enforce_restrictions=False`` disables the pivot-uniqueness pass (used
    by the baseline experiments that demonstrate why the restriction is
    needed); the VCs are still generated and proved against the full
    background predicate.

    ``lint=True`` (the default) runs the static-analysis pre-filter
    before proving and records its findings in ``report.diagnostics``.
    The passes are pure AST/CFG walks, far below the prover's budget.
    """
    start = time.monotonic()
    check_well_formed(scope)
    report = CheckReport()
    if lint:
        from repro.analysis.engine import lint_scope

        # The syntactic restriction family is reported separately below;
        # the flow-sensitive escape pass follows the restriction switch.
        report.diagnostics = lint_scope(
            scope,
            include_restrictions=False,
            include_flow=enforce_restrictions,
        ).diagnostics
    scope = desugar_contracts(scope)
    if enforce_restrictions:
        report.pivot_violations = check_pivot_uniqueness(scope)
    for impls in scope.impls.values():
        for index, impl in enumerate(impls):
            bundle = vc_for_impl(scope, impl)
            result = bundle.prove(limits)
            if result.verdict is Verdict.UNSAT:
                status = ImplStatus.VERIFIED
            elif result.verdict is Verdict.SAT:
                status = ImplStatus.NOT_PROVED
            else:
                status = ImplStatus.RESOURCE_OUT
            failed = (
                bundle.failed_obligation(result)
                if status is ImplStatus.NOT_PROVED
                else None
            )
            report.verdicts.append(
                ImplVerdict(
                    impl=impl,
                    index=index,
                    status=status,
                    stats=result.stats,
                    failed_obligation=failed,
                )
            )
    report.elapsed = time.monotonic() - start
    return report
