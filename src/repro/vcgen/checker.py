"""The end-to-end modular checker driver.

``check_scope`` runs the full pipeline the paper's checker implements:

1. well-formedness (self-contained names, acyclic local inclusions);
2. the syntactic pivot-uniqueness restriction;
3. per-implementation VC generation and mechanical proof.

Owner exclusion needs no separate pass: it is embedded in every call's
verification condition and assumed on entry via ``Init``.

The driver is fault-tolerant: every implementation is checked in
isolation, so a crash or hang in one VC (the paper itself reports prover
divergence on cyclic rep inclusions) never loses the verdicts of the
others. An unexpected exception becomes an ``INTERNAL_ERROR`` verdict
carrying an ``OL900`` traceback diagnostic; exhausting the shared
``Limits.scope_time_budget`` marks the remaining implementations
``TIMED_OUT`` (``OL901``) instead of starving them silently. The
advisory passes (lint pre-filter, pivot restriction) degrade to an
``OL900`` *warning* when they crash — checking continues. Only genuine
user errors (``WellFormednessError``) still raise.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, List, Optional, Tuple

from repro.analysis.diagnostics import (
    Diagnostic,
    Severity,
    internal_error_diagnostic,
)
from repro.errors import WellFormednessError
from repro.obs import events as obs_events
from repro.oolong.ast import ImplDecl
from repro.oolong.contracts import desugar_contracts
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits, ProverStats, Verdict
from repro.restrictions.pivot import PivotViolation, check_pivot_uniqueness
from repro.vcgen.vc import vc_for_impl
from repro.vcgen.wlp import ObligationInfo

if TYPE_CHECKING:
    from repro.obs.explain import Explanation


class ImplStatus(enum.Enum):
    """Outcome of checking one implementation."""

    VERIFIED = "verified"
    NOT_PROVED = "not proved"
    RESOURCE_OUT = "resource limit exceeded"
    #: The scope-wide wall-clock budget ran out before (or while) this
    #: implementation was checked.
    TIMED_OUT = "timed out"
    #: VC generation or the prover crashed; the verdict carries an
    #: ``OL900`` diagnostic with the captured traceback.
    INTERNAL_ERROR = "internal error"


@dataclass
class ImplVerdict:
    """The checker's verdict for a single implementation."""

    impl: ImplDecl
    index: int
    status: ImplStatus
    stats: ProverStats
    failed_obligation: Optional[ObligationInfo] = None
    #: For ``INTERNAL_ERROR``/``TIMED_OUT``: the OL9xx detail diagnostic.
    error: Optional[Diagnostic] = None
    #: In explain mode: the blame report (non-proofs) or replayable
    #: proof log (``VERIFIED``) — see :mod:`repro.obs.explain`.
    explanation: Optional["Explanation"] = None

    @property
    def ok(self) -> bool:
        return self.status is ImplStatus.VERIFIED

    def describe(self) -> str:
        text = f"impl {self.impl.name}#{self.index}: {self.status.value}"
        if self.failed_obligation is not None:
            text += f" — stuck on {self.failed_obligation}"
        if self.error is not None:
            text += f" — {self.error.message}"
        return text


@dataclass
class CheckReport:
    """Everything ``check_scope`` found.

    ``diagnostics`` holds the lint/inference findings of the static
    analysis pre-filter (``OL110``/``OL2xx``/``OL3xx``), plus ``OL900``
    warnings for advisory passes that crashed. They are advisory: ``ok``
    is decided by the restriction pass, the prover verdicts, and
    ``fatal`` alone (an ``OL301`` missing licence surfaces as a failed
    proof anyway).

    ``fatal`` holds diagnostics for failures that prevented checking
    altogether (frontend errors in resilient parsing, a crashed contract
    desugaring); a report with fatal diagnostics is never ``ok``.
    """

    pivot_violations: List[PivotViolation] = field(default_factory=list)
    verdicts: List[ImplVerdict] = field(default_factory=list)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    fatal: List[Diagnostic] = field(default_factory=list)
    elapsed: float = 0.0
    #: Result-cache traffic for this run (hits/misses/stores/rejections),
    #: set when ``cache_dir`` was given. Deliberately *not* part of
    #: ``to_dict``: the report stays byte-identical across cache states
    #: and serial/parallel backends; the CLI exports it separately.
    cache_summary: Optional[dict] = None
    #: Static-discharge tallies (obligations discharged / refuted /
    #: deferred, per-impl outcomes), set when ``static_discharge`` was
    #: enabled. Like ``cache_summary``, *not* part of ``to_dict`` — the
    #: report stays verdict-identical with discharge on or off.
    discharge_summary: Optional[dict] = None
    #: Fleet lease/steal/membership counters, set when ``fleet`` was
    #: given. Like the other summaries, *not* part of ``to_dict`` — a
    #: fleet report stays byte-identical to a serial one.
    fleet_summary: Optional[dict] = None
    #: Run-ledger bookkeeping (commits, resumed/stale/skipped records),
    #: set when ``run_dir`` was given. Like the other summaries, *not*
    #: part of ``to_dict`` or ``describe`` — a resumed report must stay
    #: byte-identical to an uninterrupted one; the CLI surfaces recovery
    #: warnings on stderr instead.
    ledger_summary: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return (
            not self.fatal
            and not self.pivot_violations
            and all(v.ok for v in self.verdicts)
        )

    def verdict_for(self, proc_name: str, index: int = 0) -> Optional[ImplVerdict]:
        matching = [v for v in self.verdicts if v.impl.name == proc_name]
        if index < len(matching):
            return matching[index]
        return None

    def worst_diagnostic_severity(self) -> Optional[Severity]:
        from repro.analysis.diagnostics import max_severity

        return max_severity(self.diagnostics)

    def describe(self, *, stats: bool = False) -> str:
        """The canonical text report (the CLI prints exactly this).

        ``stats=True`` appends per-implementation prover counters to each
        verdict line.
        """
        lines: List[str] = []
        for diagnostic in self.fatal:
            lines.append(str(diagnostic))
        for violation in self.pivot_violations:
            lines.append(f"restriction violation: {violation}")
        for diagnostic in self.diagnostics:
            lines.append(str(diagnostic))
        for verdict in self.verdicts:
            line = verdict.describe()
            if stats:
                counters = verdict.stats
                line += (
                    f"  [instances={counters.instantiations}"
                    f" branches={counters.branches}"
                    f" rounds={counters.rounds}"
                    f" merges={counters.merges}"
                    f" time={counters.elapsed:.2f}s]"
                )
            lines.append(line)
            if stats and counters.per_quantifier:
                ranked = sorted(
                    counters.per_quantifier.items(),
                    key=lambda kv: (-kv[1], kv[0]),
                )
                shown = ", ".join(
                    f"{name}={count}" for name, count in ranked[:5]
                )
                more = len(ranked) - 5
                suffix = f" (+{more} more)" if more > 0 else ""
                lines.append(f"    per-quantifier: {shown}{suffix}")
        lines.append("OK" if self.ok else "FAILED")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """A machine-readable rendering (used by ``--format json``)."""
        return {
            "ok": self.ok,
            "elapsed": round(self.elapsed, 6),
            "restriction_violations": [
                violation.to_diagnostic().to_dict()
                for violation in self.pivot_violations
            ],
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "fatal": [d.to_dict() for d in self.fatal],
            "verdicts": [
                {
                    "impl": verdict.impl.name,
                    "index": verdict.index,
                    "status": verdict.status.value,
                    "failed_obligation": (
                        str(verdict.failed_obligation)
                        if verdict.failed_obligation is not None
                        else None
                    ),
                    "error": (
                        verdict.error.to_dict()
                        if verdict.error is not None
                        else None
                    ),
                    "explanation": (
                        verdict.explanation.to_dict()
                        if verdict.explanation is not None
                        else None
                    ),
                    "stats": verdict.stats.to_dict(),
                }
                for verdict in self.verdicts
            ],
        }


def _deadline_diagnostic(impl: ImplDecl, *, before: bool) -> Diagnostic:
    phase = "before this implementation was checked" if before else (
        "while this implementation was being checked"
    )
    return Diagnostic(
        code="OL901",
        message=f"scope time budget exhausted {phase}",
        impl=impl.name,
    )


def _check_impl(
    scope: Scope,
    impl: ImplDecl,
    index: int,
    limits: Optional[Limits],
    deadline: Optional[float],
    explain: bool = False,
) -> Tuple[ImplVerdict, Optional[Diagnostic]]:
    """Check one implementation in isolation: any crash or overrun is
    converted into a verdict rather than propagated.

    Returns the verdict plus, in explain mode, an optional ``OL900``
    warning when the explainer itself crashed — explanation is advisory,
    so the verdict survives and the crash degrades like the other
    advisory passes.
    """
    if deadline is not None and time.monotonic() >= deadline:
        return (
            ImplVerdict(
                impl=impl,
                index=index,
                status=ImplStatus.TIMED_OUT,
                stats=ProverStats(),
                error=_deadline_diagnostic(impl, before=True),
            ),
            None,
        )
    try:
        bundle = vc_for_impl(scope, impl)
        result = bundle.prove(limits, explain=explain)
        verdict = result.verdict
        stats = result.stats
        error: Optional[Diagnostic] = None
        if verdict is Verdict.UNSAT:
            status = ImplStatus.VERIFIED
        elif verdict is Verdict.SAT:
            status = ImplStatus.NOT_PROVED
        elif deadline is not None and time.monotonic() >= deadline:
            status = ImplStatus.TIMED_OUT
            error = _deadline_diagnostic(impl, before=False)
        else:
            status = ImplStatus.RESOURCE_OUT
        # A resource-out or timed-out branch records the obligation it
        # was working on too (the prover snapshots its markers before
        # giving up), so those verdicts also name a culprit when the
        # markers identify one.
        failed = (
            bundle.failed_obligation(result)
            if status is not ImplStatus.VERIFIED
            else None
        )
        impl_verdict = ImplVerdict(
            impl=impl,
            index=index,
            status=status,
            stats=stats,
            failed_obligation=failed,
            error=error,
        )
        explain_crash: Optional[Diagnostic] = None
        if explain:
            try:
                from repro.obs.explain import attach_to_trace, explain_result

                impl_verdict.explanation = explain_result(
                    scope, impl.name, index, status.value, failed, result
                )
                attach_to_trace(impl_verdict.explanation)
            except Exception as exc:  # advisory: keep the verdict
                explain_crash = internal_error_diagnostic(
                    "verdict explanation",
                    exc,
                    impl=impl.name,
                    severity=Severity.WARNING,
                )
        return impl_verdict, explain_crash
    except Exception as exc:  # crash isolation: never lose the batch
        return (
            ImplVerdict(
                impl=impl,
                index=index,
                status=ImplStatus.INTERNAL_ERROR,
                stats=ProverStats(),
                error=internal_error_diagnostic(
                    "verification", exc, impl=impl.name
                ),
            ),
            None,
        )


def check_scope(
    scope: Scope,
    limits: Optional[Limits] = None,
    *,
    enforce_restrictions: bool = True,
    lint: bool = True,
    explain: bool = False,
    parallel: Optional[int] = None,
    fleet=None,
    cache_dir: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 2,
    static_discharge: str = "off",
    check_discharge: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> CheckReport:
    """Check every implementation in ``scope``.

    ``run_dir`` makes the run crash-safe: every decided verdict is
    fsync'd to a write-ahead ledger (:mod:`repro.parallel.ledger`)
    before the run can complete, so a SIGKILL'd coordinator loses no
    committed work. ``resume=True`` replays a previous ledger in the
    same directory: records validated against the current scope's
    content keys are preloaded as preresolved verdicts (the mechanism
    OL904 degradation uses) and only the remainder is re-checked — the
    resumed report is byte-identical to an uninterrupted run. Damaged
    ledgers degrade (OL905), never crash; the ledger is disabled under
    ``explain=True`` like the result cache.

    ``static_discharge="on"`` runs the interprocedural effect analyzer
    (:mod:`repro.analysis.effects`) ahead of vcgen: implementations whose
    every obligation is statically subsumed in the inclusion lattice skip
    the prover with a ``VERIFIED`` verdict, and statically refuted ones
    skip it with ``NOT_PROVED`` plus an ``OL401`` blame diagnostic;
    everything else reaches the prover unchanged. ``"strict"``
    additionally refuses to discharge implementations whose effect
    summary is opaque or exceeds the declared frame (reported as OL403).
    Discharged verdicts are never written to the result cache, and the
    pass is disabled under ``explain=True`` (explanations need a prover
    run). A crash in the pass degrades to an ``OL900`` warning and full
    proving.

    ``check_discharge=True`` is the differential soundness guard: every
    implementation is still proved, and each prover verdict is compared
    against the discharge prediction — a disagreement is reported as an
    ``OL402`` error. Implies ``static_discharge="on"`` if it was off.

    ``explain=True`` asks the prover to keep its reasoning: failed
    verdicts carry a source-anchored blame report built from the
    refuting branch's countermodel, verified ones a replayable proof
    log (:mod:`repro.obs.explain`). The default path pays nothing.

    ``parallel=N`` proves implementations on ``N`` supervised worker
    processes (:mod:`repro.parallel`): each job gets a **hard**
    wall-clock timeout (``job_timeout`` — the worker is SIGKILLed and
    the verdict is ``TIMED_OUT``/``OL901``), a dead worker's job is
    retried with exponential backoff up to ``max_retries`` times before
    being quarantined as ``INTERNAL_ERROR``/``OL902``, and results merge
    in declaration order — the report is byte-identical to a serial run
    modulo wall-clock fields. ``parallel=None`` (default) checks
    serially in-process.

    ``fleet`` checks implementations on a socket worker fleet
    (:mod:`repro.parallel.fleet`): an integer spawns that many local
    socket workers, ``"HOST:PORT"`` binds a coordinator there for
    externally started workers (``oolong-check workers serve``), and a
    :class:`~repro.parallel.fleet.FleetOptions` gives full control.
    Jobs are leased with renewable deadlines; expired leases are
    reclaimed and retried with jittered backoff, then quarantined as
    ``OL902`` exactly like the local path. If the fleet cannot be
    assembled — or collapses mid-run — the checker **degrades** to the
    local supervisor with an ``OL904`` warning instead of failing; the
    merged report is byte-identical either way.

    ``cache_url`` points at a shared cache server
    (:mod:`repro.parallel.cacheserver`); entries are checksum-validated
    on both ends (bad ones rejected as ``OL903``), and an unreachable
    server degrades to the local ``cache_dir`` (or no cache) with an
    ``OL904`` warning. ``cache_max_bytes`` bounds the local cache
    directory with LRU eviction.

    ``cache_dir`` enables the crash-safe incremental result cache
    (:mod:`repro.parallel.cache`): deterministic verdicts are keyed by a
    content hash of (implementation source, scope interface, limits,
    code version) and reused across runs; corrupted or version-skewed
    entries are rejected with an ``OL903`` warning and recomputed. The
    cache works in both serial and parallel mode and is bypassed under
    ``explain=True`` (explanations are not cached).

    ``enforce_restrictions=False`` disables the pivot-uniqueness pass (used
    by the baseline experiments that demonstrate why the restriction is
    needed); the VCs are still generated and proved against the full
    background predicate.

    ``lint=True`` (the default) runs the static-analysis pre-filter
    before proving and records its findings in ``report.diagnostics``.
    The passes are pure AST/CFG walks, far below the prover's budget.

    Fault tolerance: ``limits.scope_time_budget`` bounds the whole batch
    (remaining implementations report ``TIMED_OUT``); a crash in VC
    generation or proving yields an ``INTERNAL_ERROR`` verdict for that
    implementation only; a crash in an advisory pass (lint, pivot
    restriction) degrades to an ``OL900`` warning. Ill-formed scopes
    still raise :class:`WellFormednessError` — that is a user error, not
    a pipeline fault.

    Observability: under an installed tracer (:mod:`repro.obs`) the run
    is covered by a ``check_scope`` root span, per-stage spans at every
    boundary the fault harness names, and per-implementation/per-VC
    child spans; each verdict's ``ProverStats`` is folded into the
    tracer's metrics registry.
    """
    from repro import obs

    if static_discharge not in ("off", "on", "strict"):
        raise ValueError(
            f"static_discharge must be 'off', 'on' or 'strict', "
            f"not {static_discharge!r}"
        )
    if check_discharge and static_discharge == "off":
        static_discharge = "on"

    with obs.span("check_scope", obs.CAT_PIPELINE):
        return _check_scope_traced(
            scope,
            limits,
            enforce_restrictions=enforce_restrictions,
            lint=lint,
            explain=explain,
            parallel=parallel,
            fleet=fleet,
            cache_dir=cache_dir,
            cache_url=cache_url,
            cache_max_bytes=cache_max_bytes,
            job_timeout=job_timeout,
            max_retries=max_retries,
            static_discharge=static_discharge,
            check_discharge=check_discharge,
            run_dir=run_dir,
            resume=resume,
        )


def _ledger_degraded_diagnostic(detail: str) -> Diagnostic:
    # The whole-ledger failure path (unusable directory, header skew):
    # routine recovery (torn tail, stale records) stays out of the
    # report so resumed output is byte-identical to an uninterrupted
    # run; only "your durability is gone / everything re-checks" earns
    # a report-level warning.
    obs_events.emit("ledger-skip", reason=detail, code="OL905")
    return Diagnostic(
        code="OL905",
        message=f"{detail}; all implementations re-checked",
        severity=Severity.WARNING,
    )


def _fleet_degraded_diagnostic(detail: str) -> Diagnostic:
    # Every OL904 the checker can issue flows through here, so this one
    # emit covers all degradation paths (cache unreachable, fleet
    # unavailable, mid-run collapse, cache lost mid-run).
    obs_events.emit("degraded", code="OL904", reason=detail)
    return Diagnostic(
        code="OL904",
        message=f"{detail}; degraded to local checking",
        severity=Severity.WARNING,
    )


def _check_scope_traced(
    scope: Scope,
    limits: Optional[Limits],
    *,
    enforce_restrictions: bool,
    lint: bool,
    explain: bool = False,
    parallel: Optional[int] = None,
    fleet=None,
    cache_dir: Optional[str] = None,
    cache_url: Optional[str] = None,
    cache_max_bytes: Optional[int] = None,
    job_timeout: Optional[float] = None,
    max_retries: int = 2,
    static_discharge: str = "off",
    check_discharge: bool = False,
    run_dir: Optional[str] = None,
    resume: bool = False,
) -> CheckReport:
    from repro import obs

    start = time.monotonic()
    if (
        limits is not None
        and limits.scope_time_budget is not None
        and limits.scope_deadline is None
    ):
        limits = replace(limits, scope_deadline=start + limits.scope_time_budget)
    deadline = limits.scope_deadline if limits is not None else None

    backend = "fleet" if fleet is not None else (
        "parallel" if parallel is not None else "serial"
    )
    obs_events.emit(
        "check-start",
        impls=sum(len(impls) for impls in scope.impls.values()),
        backend=backend,
    )

    try:
        check_well_formed(scope)
    except WellFormednessError:
        raise
    except Exception as exc:
        # The pass itself died (not the scope): warn and keep checking —
        # per-impl isolation contains any knock-on failures.
        well_formed_crash = internal_error_diagnostic(
            "well-formedness checking", exc, severity=Severity.WARNING
        )
    else:
        well_formed_crash = None

    report = CheckReport()
    if well_formed_crash is not None:
        report.diagnostics.append(well_formed_crash)
    if lint:
        from repro.analysis.engine import lint_scope

        # The syntactic restriction family is reported separately below;
        # the flow-sensitive escape pass follows the restriction switch.
        try:
            result = lint_scope(
                scope,
                include_restrictions=False,
                include_flow=enforce_restrictions,
            )
            report.diagnostics.extend(list(result.diagnostics))
        except Exception as exc:
            report.diagnostics.append(
                internal_error_diagnostic(
                    "lint pre-filter", exc, severity=Severity.WARNING
                )
            )
    try:
        scope = desugar_contracts(scope)
    except Exception as exc:
        report.fatal.append(
            internal_error_diagnostic("contract desugaring", exc)
        )
        report.elapsed = time.monotonic() - start
        obs_events.emit("check-end", ok=report.ok, impls=len(report.verdicts))
        return report
    if enforce_restrictions:
        try:
            report.pivot_violations = list(check_pivot_uniqueness(scope))
        except Exception as exc:
            report.diagnostics.append(
                internal_error_diagnostic(
                    "pivot restriction pass", exc, severity=Severity.WARNING
                )
            )
    discharge = None
    if static_discharge != "off" and not explain:
        # Explain runs want the prover's reasoning; a discharged verdict
        # has none to offer, so the pass is bypassed entirely.
        from repro.analysis.effects import discharge_scope

        try:
            with obs.span("discharge", obs.CAT_PIPELINE):
                discharge = discharge_scope(scope, mode=static_discharge)
        except Exception as exc:
            report.diagnostics.append(
                internal_error_diagnostic(
                    "static discharge", exc, severity=Severity.WARNING
                )
            )
        if discharge is not None:
            report.diagnostics.extend(discharge.diagnostics)
            report.discharge_summary = discharge.summary_dict()
            report.discharge_summary["checked"] = check_discharge
            _record_discharge_metrics(discharge)

    cache = None
    remote_cache = None
    if not explain:
        # Explain runs bypass the cache: explanations are never cached,
        # so a hit would silently drop the requested blame report.
        if cache_url is not None:
            from repro.parallel.cacheserver import (
                CacheUnavailable,
                RemoteCache,
            )

            try:
                cache = remote_cache = RemoteCache.connect(cache_url)
            except CacheUnavailable as exc:
                report.diagnostics.append(
                    _fleet_degraded_diagnostic(
                        f"shared result cache unreachable ({exc})"
                    )
                )
        if cache is None and cache_dir is not None:
            from repro.parallel.cache import ResultCache

            cache = ResultCache(cache_dir, max_bytes=cache_max_bytes)

    ledger = None
    resumed: dict = {}
    if run_dir is not None and not explain:
        # The ledger shares the cache's explain bypass: explanations are
        # never persisted, so a replayed verdict would silently drop the
        # requested blame report.
        from repro.parallel.ledger import RunLedger

        journal = obs_events.journal()
        try:
            ledger = RunLedger(
                run_dir,
                scope,
                limits,
                resume=resume,
                run_id=journal.run_id if journal is not None else None,
            )
        except OSError as exc:
            report.diagnostics.append(
                _ledger_degraded_diagnostic(
                    f"run ledger unusable in {run_dir!r} ({exc})"
                )
            )
        if ledger is not None:
            if ledger.discarded is not None:
                report.diagnostics.append(
                    _ledger_degraded_diagnostic(
                        f"run ledger discarded ({ledger.discarded})"
                    )
                )
            resumed = dict(ledger.preloaded)

    with obs_events.verdict_sink(ledger.commit if ledger is not None else None):
        if fleet is not None:
            _check_impls_fleet(
                scope,
                limits,
                deadline,
                report,
                fleet=fleet,
                cache=cache,
                job_timeout=job_timeout,
                max_retries=max_retries,
                explain=explain,
                discharge=discharge,
                check_discharge=check_discharge,
                resumed=resumed,
                ledger=ledger,
            )
        elif parallel is not None:
            _check_impls_parallel(
                scope,
                limits,
                deadline,
                report,
                parallel=parallel,
                cache=cache,
                job_timeout=job_timeout,
                max_retries=max_retries,
                explain=explain,
                discharge=discharge,
                check_discharge=check_discharge,
                resumed=resumed,
                ledger=ledger,
            )
        else:
            _check_impls_serial(
                scope,
                limits,
                deadline,
                report,
                cache=cache,
                explain=explain,
                discharge=discharge,
                check_discharge=check_discharge,
                resumed=resumed,
                ledger=ledger,
            )
    if ledger is not None:
        report.ledger_summary = ledger.summary()
        report.ledger_summary["warnings"] = [
            f"{where}: {reason}" for where, reason in ledger.warnings
        ]
        ledger.close()
    if cache is not None:
        report.diagnostics.extend(_cache_rejection_diagnostics(cache))
        report.cache_summary = cache.summary()
    if remote_cache is not None:
        if remote_cache.degraded is not None:
            report.diagnostics.append(
                _fleet_degraded_diagnostic(
                    f"shared result cache lost mid-run "
                    f"({remote_cache.degraded})"
                )
            )
        remote_cache.close()
    report.elapsed = time.monotonic() - start
    obs_events.emit("check-end", ok=report.ok, impls=len(report.verdicts))
    return report


def _record_verdict_metrics(
    verdict: ImplVerdict, *, cache_hit: bool, discharged: bool = False
) -> None:
    from repro import obs

    registry = obs.metrics()
    if registry is None:
        return
    if cache_hit:
        # The cached stats describe work a *previous* run did; record
        # only the hit, not phantom prover effort.
        registry.inc("checker.cache_hits")
    elif discharged:
        registry.inc("checker.discharged")
    else:
        registry.record_prover_stats(verdict.stats)
    registry.inc("checker.impls")
    registry.inc(f"checker.status.{verdict.status.name.lower()}")


def _record_discharge_metrics(discharge) -> None:
    from repro import obs

    registry = obs.metrics()
    if registry is None:
        return
    obligations = discharge.obligation_counts()
    registry.inc(
        "discharge.obligations_discharged", obligations["static-valid"]
    )
    registry.inc(
        "discharge.obligations_refuted", obligations["static-violation"]
    )
    registry.inc("discharge.obligations_deferred", obligations["unknown"])
    impls = discharge.impl_counts()
    registry.inc("discharge.impls_discharged", impls["static-valid"])
    registry.inc("discharge.impls_refuted", impls["static-violation"])
    registry.inc("discharge.impls_deferred", impls["unknown"])


def _discharged_verdict(impl: ImplDecl, index: int, entry) -> ImplVerdict:
    """The verdict a discharge outcome predicts, with empty prover stats
    (no prover ran)."""
    from repro.analysis.effects import Outcome

    if entry.outcome is Outcome.STATIC_VALID:
        return ImplVerdict(
            impl=impl,
            index=index,
            status=ImplStatus.VERIFIED,
            stats=ProverStats(),
        )
    assert entry.outcome is Outcome.STATIC_VIOLATION
    return ImplVerdict(
        impl=impl,
        index=index,
        status=ImplStatus.NOT_PROVED,
        stats=ProverStats(),
        failed_obligation=entry.blame.obligation,
    )


def _discharge_entry(discharge, impl: ImplDecl, index: int):
    """The actionable discharge entry for one implementation, if any."""
    if discharge is None:
        return None
    from repro.analysis.effects import Outcome

    entry = discharge.impls.get((impl.name, index))
    if entry is None or entry.outcome is Outcome.UNKNOWN:
        return None
    return entry


def _emit_discharge_findings(report: CheckReport, discharge, entry) -> None:
    """The OL401 diagnostics for a statically refuted implementation."""
    from repro.analysis.effects import Outcome, violation_diagnostic

    if entry.outcome is not Outcome.STATIC_VIOLATION:
        return
    report.diagnostics.append(
        violation_diagnostic(discharge.lattice.scope, entry, entry.blame)
    )


def _compare_discharge(
    report: CheckReport, discharge, entry, verdict: ImplVerdict
) -> None:
    """``--check-discharge``: diff one prover verdict against the static
    prediction. Non-terminal prover outcomes (timeouts, resource
    exhaustion, crashes) are not semantic disagreements — the prover
    never answered — and are skipped."""
    from repro.analysis.effects import Outcome

    predicted = (
        ImplStatus.VERIFIED
        if entry.outcome is Outcome.STATIC_VALID
        else ImplStatus.NOT_PROVED
    )
    if verdict.status not in (ImplStatus.VERIFIED, ImplStatus.NOT_PROVED):
        return
    if verdict.status is predicted:
        if report.discharge_summary is not None:
            report.discharge_summary["agreements"] = (
                report.discharge_summary.get("agreements", 0) + 1
            )
        _emit_discharge_findings(report, discharge, entry)
        return
    if report.discharge_summary is not None:
        report.discharge_summary["disagreements"] = (
            report.discharge_summary.get("disagreements", 0) + 1
        )
    report.diagnostics.append(
        Diagnostic(
            code="OL402",
            message=(
                f"static discharge predicted {predicted.value!r} for "
                f"impl {verdict.impl.name}#{verdict.index} but the "
                f"prover returned {verdict.status.value!r}"
            ),
            impl=verdict.impl.name,
        )
    )


def _check_impls_serial(
    scope: Scope,
    limits: Optional[Limits],
    deadline: Optional[float],
    report: CheckReport,
    *,
    cache,
    explain: bool,
    discharge=None,
    check_discharge: bool = False,
    resumed: Optional[dict] = None,
    ledger=None,
) -> None:
    if cache is not None:
        from repro.parallel.cache import (
            cache_key,
            payload_to_verdict,
            verdict_to_payload,
        )

    for impls in scope.impls.values():
        for index, impl in enumerate(impls):
            entry = _discharge_entry(discharge, impl, index)
            if resumed and (impl.name, index) in resumed:
                # Replayed from the run ledger: no prover, no cache
                # traffic — like a cache hit, served even past the
                # scope deadline (the work was already paid for).
                verdict = resumed[(impl.name, index)]
                if entry is not None:
                    if check_discharge:
                        _compare_discharge(report, discharge, entry, verdict)
                    else:
                        _emit_discharge_findings(report, discharge, entry)
                _record_verdict_metrics(verdict, cache_hit=False)
                obs_events.emit_impl_checked(verdict, preresolved=True)
                report.verdicts.append(verdict)
                if ledger is not None:
                    ledger.merge_chaos_point()
                continue
            if entry is not None and not check_discharge:
                # Statically discharged: no prover, no cache traffic
                # (cached verdicts must always mean "the prover said
                # so"), and — like a cache hit — served even past the
                # scope deadline.
                verdict = _discharged_verdict(impl, index, entry)
                _emit_discharge_findings(report, discharge, entry)
                _record_verdict_metrics(
                    verdict, cache_hit=False, discharged=True
                )
                obs_events.emit_impl_checked(verdict, discharged=True)
                report.verdicts.append(verdict)
                if ledger is not None:
                    ledger.merge_chaos_point()
                continue
            key = None
            if cache is not None:
                key = cache_key(scope, impl, index, limits)
                payload = cache.load(key)
                if payload is not None:
                    verdict = payload_to_verdict(payload, impl, index)
                    if entry is not None:
                        _compare_discharge(report, discharge, entry, verdict)
                    _record_verdict_metrics(verdict, cache_hit=True)
                    obs_events.emit_impl_checked(verdict, cache_hit=True)
                    report.verdicts.append(verdict)
                    if ledger is not None:
                        ledger.merge_chaos_point()
                    continue
            verdict, explain_crash = _check_impl(
                scope, impl, index, limits, deadline, explain
            )
            if key is not None:
                payload = verdict_to_payload(verdict)
                if payload is not None:
                    cache.store(key, payload, impl=impl.name, index=index)
            if explain_crash is not None:
                report.diagnostics.append(explain_crash)
            if entry is not None:
                _compare_discharge(report, discharge, entry, verdict)
            _record_verdict_metrics(verdict, cache_hit=False)
            obs_events.emit_impl_checked(verdict)
            report.verdicts.append(verdict)
            if ledger is not None:
                ledger.merge_chaos_point()


def _check_impls_parallel(
    scope: Scope,
    limits: Optional[Limits],
    deadline: Optional[float],
    report: CheckReport,
    *,
    parallel: int,
    cache,
    job_timeout: Optional[float],
    max_retries: int,
    explain: bool,
    discharge=None,
    check_discharge: bool = False,
    resumed: Optional[dict] = None,
    ledger=None,
) -> None:
    from repro.parallel.supervisor import ParallelOptions, run_parallel_checks

    preresolved = {}
    if discharge is not None and not check_discharge:
        for impls in scope.impls.values():
            for index, impl in enumerate(impls):
                entry = _discharge_entry(discharge, impl, index)
                if entry is not None:
                    preresolved[(impl.name, index)] = _discharged_verdict(
                        impl, index, entry
                    )
    discharged_keys = frozenset(preresolved)
    for key, verdict in (resumed or {}).items():
        # Ledger replays preresolve like discharge does, but stay out of
        # discharged_keys so discharge findings/metrics stay truthful.
        preresolved.setdefault(key, verdict)

    options = ParallelOptions(
        jobs=max(1, int(parallel)),
        job_timeout=job_timeout,
        max_retries=max_retries,
    )
    outcome = run_parallel_checks(
        scope,
        limits,
        options=options,
        explain=explain,
        cache=cache,
        scope_deadline=deadline,
        preresolved=preresolved,
    )
    _merge_outcome_jobs(
        report,
        outcome.jobs,
        discharge,
        check_discharge,
        discharged_keys=discharged_keys,
        ledger=ledger,
    )


def _merge_outcome_jobs(
    report: CheckReport,
    jobs,
    discharge,
    check_discharge: bool,
    *,
    discharged_keys: frozenset,
    extra_cache_hits: frozenset = frozenset(),
    ledger=None,
) -> None:
    """Merge a backend's completed jobs in job (declaration) order.

    Shared by the local supervisor and fleet paths so both report the
    same diagnostics and metrics for the same jobs. ``discharged_keys``
    names the jobs whose verdicts came from static discharge (as opposed
    to other preresolution, e.g. a degraded fleet's completed jobs);
    ``extra_cache_hits`` marks jobs served from cache by an earlier,
    abandoned backend run.
    """
    for job in jobs:
        if job.explain_crash is not None:
            report.diagnostics.append(job.explain_crash)
        key = (job.verdict.impl.name, job.verdict.index)
        entry = _discharge_entry(discharge, job.verdict.impl, job.verdict.index)
        if entry is not None:
            if key in discharged_keys:
                _emit_discharge_findings(report, discharge, entry)
            elif check_discharge:
                _compare_discharge(report, discharge, entry, job.verdict)
        _record_verdict_metrics(
            job.verdict,
            cache_hit=job.cache_hit or key in extra_cache_hits,
            discharged=key in discharged_keys,
        )
        report.verdicts.append(job.verdict)
        if ledger is not None:
            ledger.merge_chaos_point()


def _check_impls_fleet(
    scope: Scope,
    limits: Optional[Limits],
    deadline: Optional[float],
    report: CheckReport,
    *,
    fleet,
    cache,
    job_timeout: Optional[float],
    max_retries: int,
    explain: bool,
    discharge=None,
    check_discharge: bool = False,
    resumed: Optional[dict] = None,
    ledger=None,
) -> None:
    """The distributed path: lease jobs to a socket fleet, degrade local.

    Degradation is total-order safe: whatever the fleet *did* finish is
    carried into the local supervisor as preresolved verdicts, so no job
    is ever proved twice or lost, and the merged report is identical to
    what any other backend would have produced.
    """
    from repro.parallel.fleet import (
        FleetOptions,
        FleetUnavailable,
        run_fleet_checks,
    )
    from repro.parallel.supervisor import ParallelOptions, run_parallel_checks

    preresolved = {}
    if discharge is not None and not check_discharge:
        for impls in scope.impls.values():
            for index, impl in enumerate(impls):
                entry = _discharge_entry(discharge, impl, index)
                if entry is not None:
                    preresolved[(impl.name, index)] = _discharged_verdict(
                        impl, index, entry
                    )
    discharged_keys = frozenset(preresolved)
    for key, verdict in (resumed or {}).items():
        preresolved.setdefault(key, verdict)

    options = FleetOptions.from_spec(
        fleet, job_timeout=job_timeout, max_retries=max_retries
    )
    outcome = None
    try:
        outcome = run_fleet_checks(
            scope,
            limits,
            options=options,
            explain=explain,
            cache=cache,
            scope_deadline=deadline,
            preresolved=preresolved,
        )
    except FleetUnavailable as exc:
        report.diagnostics.append(
            _fleet_degraded_diagnostic(f"fleet unavailable ({exc})")
        )
        report.fleet_summary = {"degraded": str(exc)}

    if outcome is not None:
        report.fleet_summary = dict(outcome.summary)
        if outcome.degraded is None:
            _merge_outcome_jobs(
                report,
                outcome.jobs,
                discharge,
                check_discharge,
                discharged_keys=discharged_keys,
                ledger=ledger,
            )
            return
        report.diagnostics.append(
            _fleet_degraded_diagnostic(outcome.degraded)
        )
        report.fleet_summary["degraded"] = outcome.degraded
        # Carry everything the fleet completed into the local rerun as
        # preresolved verdicts; remember which of those were cache hits
        # so the metrics stay truthful.
        extra_hits = set()
        for job in outcome.jobs:
            if job.done:
                key = (job.proc_name, job.impl_index)
                preresolved[key] = job.verdict
                if job.cache_hit:
                    extra_hits.add(key)
        local = run_parallel_checks(
            scope,
            limits,
            options=ParallelOptions(
                jobs=max(options.workers, 1) if options.workers else 2,
                job_timeout=job_timeout,
                max_retries=max_retries,
            ),
            explain=explain,
            cache=cache,
            scope_deadline=deadline,
            preresolved=preresolved,
        )
        _merge_outcome_jobs(
            report,
            local.jobs,
            discharge,
            check_discharge,
            discharged_keys=discharged_keys,
            extra_cache_hits=frozenset(extra_hits),
            ledger=ledger,
        )
        return

    # Fleet never assembled: run everything on the local supervisor.
    local = run_parallel_checks(
        scope,
        limits,
        options=ParallelOptions(
            jobs=max(options.workers, 1) if options.workers else 2,
            job_timeout=job_timeout,
            max_retries=max_retries,
        ),
        explain=explain,
        cache=cache,
        scope_deadline=deadline,
        preresolved=preresolved,
    )
    _merge_outcome_jobs(
        report,
        local.jobs,
        discharge,
        check_discharge,
        discharged_keys=discharged_keys,
        ledger=ledger,
    )


def _cache_rejection_diagnostics(cache) -> List[Diagnostic]:
    """One ``OL903`` warning per rejected cache entry — rejected entries
    are recomputed, never trusted, but the user should know their cache
    is rotting (disk fault, version skew, concurrent writer)."""
    return [
        Diagnostic(
            code="OL903",
            message=(
                f"cache entry {key[:12]}… rejected ({reason}); "
                "verdict recomputed"
            ),
            severity=Severity.WARNING,
        )
        for key, reason in cache.rejections
    ]
