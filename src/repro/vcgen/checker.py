"""The end-to-end modular checker driver.

``check_scope`` runs the full pipeline the paper's checker implements:

1. well-formedness (self-contained names, acyclic local inclusions);
2. the syntactic pivot-uniqueness restriction;
3. per-implementation VC generation and mechanical proof.

Owner exclusion needs no separate pass: it is embedded in every call's
verification condition and assumed on entry via ``Init``.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import List, Optional

from repro.oolong.ast import ImplDecl
from repro.oolong.contracts import desugar_contracts
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits, ProverStats, Verdict
from repro.restrictions.pivot import PivotViolation, check_pivot_uniqueness
from repro.vcgen.vc import vc_for_impl
from repro.vcgen.wlp import ObligationInfo


class ImplStatus(enum.Enum):
    """Outcome of checking one implementation."""

    VERIFIED = "verified"
    NOT_PROVED = "not proved"
    RESOURCE_OUT = "resource limit exceeded"


@dataclass
class ImplVerdict:
    """The checker's verdict for a single implementation."""

    impl: ImplDecl
    index: int
    status: ImplStatus
    stats: ProverStats
    failed_obligation: Optional[ObligationInfo] = None

    @property
    def ok(self) -> bool:
        return self.status is ImplStatus.VERIFIED

    def describe(self) -> str:
        text = f"impl {self.impl.name}#{self.index}: {self.status.value}"
        if self.failed_obligation is not None:
            text += f" — stuck on {self.failed_obligation}"
        return text


@dataclass
class CheckReport:
    """Everything ``check_scope`` found."""

    pivot_violations: List[PivotViolation] = field(default_factory=list)
    verdicts: List[ImplVerdict] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.pivot_violations and all(v.ok for v in self.verdicts)

    def verdict_for(self, proc_name: str, index: int = 0) -> Optional[ImplVerdict]:
        matching = [v for v in self.verdicts if v.impl.name == proc_name]
        if index < len(matching):
            return matching[index]
        return None

    def describe(self) -> str:
        lines: List[str] = []
        for violation in self.pivot_violations:
            lines.append(f"restriction violation: {violation}")
        for verdict in self.verdicts:
            lines.append(verdict.describe())
        lines.append("OK" if self.ok else "FAILED")
        return "\n".join(lines)


def check_scope(
    scope: Scope,
    limits: Optional[Limits] = None,
    *,
    enforce_restrictions: bool = True,
) -> CheckReport:
    """Check every implementation in ``scope``.

    ``enforce_restrictions=False`` disables the pivot-uniqueness pass (used
    by the baseline experiments that demonstrate why the restriction is
    needed); the VCs are still generated and proved against the full
    background predicate.
    """
    start = time.monotonic()
    check_well_formed(scope)
    scope = desugar_contracts(scope)
    report = CheckReport()
    if enforce_restrictions:
        report.pivot_violations = check_pivot_uniqueness(scope)
    for impls in scope.impls.values():
        for index, impl in enumerate(impls):
            bundle = vc_for_impl(scope, impl)
            result = bundle.prove(limits)
            if result.verdict is Verdict.UNSAT:
                status = ImplStatus.VERIFIED
            elif result.verdict is Verdict.SAT:
                status = ImplStatus.NOT_PROVED
            else:
                status = ImplStatus.RESOURCE_OUT
            failed = (
                bundle.failed_obligation(result)
                if status is ImplStatus.NOT_PROVED
                else None
            )
            report.verdicts.append(
                ImplVerdict(
                    impl=impl,
                    index=index,
                    status=status,
                    stats=result.stats,
                    failed_obligation=failed,
                )
            )
    report.elapsed = time.monotonic() - start
    return report
