"""The background predicates: UBP (universal) and BP_D (scope-dependent).

Every axiom carries hand-written E-matching triggers, mirroring how the
paper's checker drove Simplify. Axiom numbering follows the paper:

* store select/update (McCarthy) and allocation axioms (Section 4.0);
* the inclusion connection (4), split into a *local* introduction rule, a
  goal-directed *step* rule, and the *decomposition* rule with skolemized
  witnesses;
* transitivity of ``inc``;
* pivot uniqueness (6);
* the no-cycle axiom (7);
* store-insensitivity of ``inc`` to non-pivot writes;
* per-attribute local-inclusion completeness and per-field rep-inclusion
  completeness — the paper's scope axioms, including (8) and (9).

The decomposition rule (4a) is the known matching-loop generator: each
instance manufactures new ``inc`` terms over skolem witnesses that its own
trigger then matches. The prover's instantiation budget bounds it — the
analogue of the divergence the paper reports for cyclic rep inclusions.
"""

from __future__ import annotations

from typing import List

from repro.logic.terms import (
    And,
    App,
    Const,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Pred,
    Var,
    conj,
    disj,
    neq,
)
from repro.oolong.program import Scope
from repro.vcgen.vocab import (
    ALIVE,
    INC,
    LINC,
    NULL,
    RINC,
    SEL,
    SUCC,
    UPD,
    alive,
    alive_t,
    attr_const,
    inc,
    inc_t,
    linc,
    linc_t,
    new,
    rinc,
    rinc_t,
    sel,
    succ,
    upd,
)

# Shared bound-variable terms (names are local to each quantifier).
S, T = Var("S"), Var("T")
X, Y, Z = Var("X"), Var("Y"), Var("Z")
A, B, C = Var("A"), Var("B"), Var("C")
F, G, H, K, V = Var("F"), Var("G"), Var("H"), Var("K"), Var("V")


def universal_background() -> List[Formula]:
    """The universal background predicate UBP, as a list of named axioms."""
    axioms: List[Formula] = []

    # --- Store theory -----------------------------------------------------
    axioms.append(
        Forall(
            ("S", "X", "A", "V"),
            Eq(sel(upd(S, X, A, V), X, A), V),
            ((App(UPD, (S, X, A, V)),),),
            "sel-upd-same",
            1,
        )
    )
    axioms.append(
        Forall(
            ("S", "X", "A", "V", "Y", "B"),
            disj(
                (
                    conj((Eq(Y, X), Eq(B, A))),
                    Eq(sel(upd(S, X, A, V), Y, B), sel(S, Y, B)),
                )
            ),
            ((App(SEL, (upd(S, X, A, V), Y, B)),),),
            "sel-upd-other",
            2,
        )
    )
    axioms.append(
        Forall(
            ("S", "X", "A", "V", "Y"),
            Iff(alive(upd(S, X, A, V), Y), alive(S, Y)),
            (
                (App(ALIVE, (upd(S, X, A, V), Y)),),
                (App(UPD, (S, X, A, V)), alive_t(S, Y)),
            ),
            "alive-upd",
            2,
        )
    )

    # --- Allocation -------------------------------------------------------
    axioms.append(
        Forall(("S",), Not(alive(S, new(S))), ((App("new", (S,)),),), "new-unalloc", 1)
    )
    axioms.append(
        Forall(
            ("S",),
            alive(succ(S), new(S)),
            ((App(SUCC, (S,)),),),
            "succ-allocates-new",
            1,
        )
    )
    axioms.append(
        Forall(
            ("S", "X"),
            Implies(alive(S, X), alive(succ(S), X)),
            (
                (App(ALIVE, (succ(S), X)),),
                (App(SUCC, (S,)), alive_t(S, X)),
            ),
            "succ-mono-alive",
            1,
        )
    )
    # Allocation changes the alive set, never field contents.
    axioms.append(
        Forall(
            ("S", "X", "A"),
            Eq(sel(succ(S), X, A), sel(S, X, A)),
            ((App(SEL, (succ(S), X, A)),),),
            "succ-preserves-sel",
            1,
        )
    )
    axioms.append(
        Forall(
            ("S", "X"),
            Implies(alive(succ(S), X), disj((alive(S, X), Eq(X, new(S))))),
            ((App(ALIVE, (succ(S), X)),),),
            "succ-alive-inverse",
            2,
        )
    )

    # null is never an allocated object.
    axioms.append(
        Forall(
            ("S",),
            Not(alive(S, NULL)),
            ((App(ALIVE, (S, NULL)),),),
            "null-not-alive",
            1,
        )
    )

    # --- Reachable-store invariants (elided by the paper, required by its
    # example proofs): unallocated objects have all-null fields, and values
    # stored in allocated objects are themselves allocated (or non-objects).
    axioms.append(
        Forall(
            ("S", "X", "A"),
            disj((alive(S, X), Eq(sel(S, X, A), NULL))),
            ((App(SEL, (S, X, A)),),),
            "unalloc-null",
            2,
        )
    )
    axioms.append(
        Forall(
            ("S", "X", "A"),
            Implies(
                conj((alive(S, X), Pred("isObj", (sel(S, X, A),)))),
                alive(S, sel(S, X, A)),
            ),
            ((App(SEL, (S, X, A)),),),
            "stored-values-alive",
            1,
        )
    )

    # --- Inclusion connection (4) ------------------------------------------
    # Local introduction: X = Y case.
    axioms.append(
        Forall(
            ("S", "X", "A", "B"),
            Implies(linc(A, B), inc(S, X, A, X, B)),
            ((inc_t(S, X, A, X, B),),),
            "inc-local",
            1,
        )
    )
    # Goal-directed step: extend a chain through one pivot dereference.
    axioms.append(
        Forall(
            ("S", "X", "A", "Z", "H", "F", "K", "B"),
            Implies(
                conj((inc(S, X, A, Z, H), rinc(F, H, K), linc(K, B))),
                disj((Eq(X, sel(S, Z, F)), inc(S, X, A, sel(S, Z, F), B))),
            ),
            (
                (inc_t(S, X, A, sel(S, Z, F), B), rinc_t(F, H, K)),
                (inc_t(S, X, A, Z, H), rinc_t(F, H, K), linc_t(K, B), App(SEL, (S, Z, F))),
            ),
            "inc-step",
            2,
        )
    )
    # Decomposition (4a): every inclusion is local or runs through a last
    # pivot dereference. Skolem witnesses are introduced by the Exists.
    axioms.append(
        Forall(
            ("S", "X", "A", "Y", "B"),
            Implies(
                inc(S, X, A, Y, B),
                disj(
                    (
                        conj((Eq(X, Y), linc(A, B))),
                        conj(
                            (
                                neq(X, Y),
                                Exists(
                                    ("Z", "H", "F", "K"),
                                    conj(
                                        (
                                            inc(S, X, A, Z, H),
                                            rinc(F, H, K),
                                            Eq(Y, sel(S, Z, F)),
                                            linc(K, B),
                                        )
                                    ),
                                ),
                            )
                        ),
                    )
                ),
            ),
            ((inc_t(S, X, A, Y, B),),),
            "inc-decompose",
            2,
        )
    )
    # First-step decomposition: a cross-object chain starts with a pivot
    # hop from X itself — ∃H,F,K: linc(A,H) ∧ rinc(F,H,K) with the rest of
    # the chain from sel(S,X,F)·K. A lemma of (4), included so mechanical
    # proofs about *fresh* objects terminate: a fresh X has all-null pivot
    # fields, so the hop dies immediately.
    axioms.append(
        Forall(
            ("S", "X", "A", "Y", "B"),
            Implies(
                inc(S, X, A, Y, B),
                disj(
                    (
                        conj((Eq(X, Y), linc(A, B))),
                        conj(
                            (
                                neq(X, Y),
                                Exists(
                                    ("H", "F", "K"),
                                    conj(
                                        (
                                            linc(A, H),
                                            rinc(F, H, K),
                                            inc(S, sel(S, X, F), K, Y, B),
                                        )
                                    ),
                                ),
                            )
                        ),
                    )
                ),
            ),
            ((inc_t(S, X, A, Y, B),),),
            "inc-first-step",
            2,
        )
    )
    # Chains never pass through null: null's fields are null, so null's
    # groups include only null's own locations (a lemma of (4) plus the
    # reachable-store invariants).
    axioms.append(
        Forall(
            ("S", "A", "Y", "B"),
            Implies(inc(S, NULL, A, Y, B), Eq(Y, NULL)),
            ((inc_t(S, NULL, A, Y, B),),),
            "null-inc-empty",
            1,
        )
    )
    # Transitivity of the main inclusion relation.
    axioms.append(
        Forall(
            ("S", "X", "A", "Y", "B", "Z", "C"),
            Implies(
                conj((inc(S, X, A, Y, B), inc(S, Y, B, Z, C))),
                inc(S, X, A, Z, C),
            ),
            ((inc_t(S, X, A, Y, B), inc_t(S, Y, B, Z, C)),),
            "inc-transitive",
            1,
        )
    )

    # --- Pivot uniqueness (6) ----------------------------------------------
    axioms.append(
        Forall(
            ("S", "F", "G", "A", "X", "Y", "B"),
            Implies(
                conj(
                    (
                        rinc(F, G, A),
                        neq(sel(S, X, F), NULL),
                        Eq(sel(S, X, F), sel(S, Y, B)),
                    )
                ),
                conj((Eq(X, Y), Eq(F, B))),
            ),
            ((rinc_t(F, G, A), App(SEL, (S, X, F)), App(SEL, (S, Y, B))),),
            "pivot-unique",
            1,
        )
    )

    # --- No inclusion cycles (7) ---------------------------------------------
    axioms.append(
        Forall(
            ("S", "F", "G", "A", "X", "B"),
            Implies(
                conj((rinc(F, G, A), neq(sel(S, X, F), NULL))),
                Not(inc(S, sel(S, X, F), B, X, G)),
            ),
            ((rinc_t(F, G, A), inc_t(S, sel(S, X, F), B, X, G)),),
            "no-cycle",
            1,
        )
    )

    # --- Object-sortedness (the paper's elided typing layer) ----------------
    # Pivot fields hold null or allocated objects (they are only ever
    # assigned new() or null); literals and operator results are not
    # objects. These facts discharge owner-exclusion obligations for
    # non-object arguments like the 3 in push(st, 3).
    axioms.append(
        Forall(("S",), Pred("isObj", (new(S),)), ((App("new", (S,)),),), "new-isObj", 1)
    )
    # null is not an object (in particular, allocation never returns null).
    axioms.append(Not(Pred("isObj", (NULL,))))
    axioms.append(
        Forall(
            ("S", "F", "G", "A", "X"),
            Implies(
                conj((rinc(F, G, A), neq(sel(S, X, F), NULL))),
                Pred("isObj", (sel(S, X, F),)),
            ),
            ((rinc_t(F, G, A), App(SEL, (S, X, F))),),
            "pivot-content-isObj",
            1,
        )
    )
    for op in ("+", "-", "*"):
        axioms.append(
            Forall(
                ("X", "Y"),
                Not(Pred("isObj", (App(op, (X, Y)),))),
                ((App(op, (X, Y)),),),
                f"op-not-isObj:{op}",
                1,
            )
        )

    # --- Insensitivity of inc to non-pivot writes ---------------------------
    # If S and T agree on every pivot field then inc(S,·) <=> inc(T,·).
    # The inner universal premise skolemizes to witness functions of (S, T).
    axioms.append(
        Forall(
            ("S", "T", "X", "A", "Y", "B"),
            Implies(
                Forall(
                    ("Z", "F", "G", "H"),
                    Implies(rinc(F, G, H), Eq(sel(S, Z, F), sel(T, Z, F))),
                ),
                Iff(inc(S, X, A, Y, B), inc(T, X, A, Y, B)),
            ),
            ((inc_t(S, X, A, Y, B), inc_t(T, X, A, Y, B)),),
            "inc-insensitive",
            1,
        )
    )

    return axioms


def scope_background(scope: Scope) -> List[Formula]:
    """The scope-dependent background predicate BP_D.

    Per declared attribute ``a``: the ground local-inclusion facts and the
    completeness axiom ``forall G :: linc(G, a) ==> G = a | G = g1 | ...``.
    Per declared attribute ``f``: the ground rep-inclusion facts and the
    completeness axiom combining the paper's (8) and (9):
    ``forall A, B :: rinc(f, A, B) ==> \\/_i (A = a_i & B = b_i)``
    (the empty disjunction — ``f`` is no pivot — yields ``!rinc(f, A, B)``).
    Attribute constants are pairwise distinct.
    """
    axioms: List[Formula] = []
    attributes = scope.attribute_names()

    # Attribute constants denote distinct attributes.
    consts = [attr_const(name) for name in attributes]
    for i, left in enumerate(consts):
        for right in consts[i + 1 :]:
            axioms.append(neq(left, right))

    for name in attributes:
        const = attr_const(name)
        # Ground facts: reflexivity and every enclosing group.
        axioms.append(linc(const, const))
        enclosing = sorted(scope.enclosing_groups(name))
        for group_name in enclosing:
            axioms.append(linc(attr_const(group_name), const))
        # Completeness of local inclusion into this attribute.
        options = [Eq(G, const)] + [Eq(G, attr_const(g)) for g in enclosing]
        axioms.append(
            Forall(
                ("G",),
                Implies(linc(G, const), disj(options)),
                ((linc_t(G, const),),),
                f"linc-complete:{name}",
            )
        )
        # Fields are leaves of the local-inclusion order and never targets
        # of maps-into clauses: `in`/`into` targets must be declared groups,
        # so no extension can ever put anything inside a field. Both facts
        # are scope knowledge in the sense of the paper's BP_D.
        if scope.is_field(name):
            axioms.append(
                Forall(
                    ("A",),
                    Implies(linc(const, A), Eq(A, const)),
                    ((linc_t(const, A),),),
                    f"field-linc-leaf:{name}",
                    1,
                )
            )
            axioms.append(
                Forall(
                    ("F", "B"),
                    Not(rinc(F, const, B)),
                    ((rinc_t(F, const, B),),),
                    f"field-no-rep:{name}",
                    1,
                )
            )
        # Ground rep facts and completeness of rep inclusion through `name`.
        pairs = scope.rep_pairs(name) if scope.is_field(name) else ()
        for group_name, mapped in pairs:
            axioms.append(rinc(const, attr_const(group_name), attr_const(mapped)))
        cases = [
            conj((Eq(A, attr_const(group_name)), Eq(B, attr_const(mapped))))
            for group_name, mapped in pairs
        ]
        axioms.append(
            Forall(
                ("A", "B"),
                Implies(rinc(const, A, B), disj(cases)),
                ((rinc_t(const, A, B),),),
                f"rinc-complete:{name}",
            )
        )

    return axioms
