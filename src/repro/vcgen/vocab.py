"""Logical vocabulary and naming conventions for the VC encoding.

Function symbols
----------------
* ``sel(S, X, A)`` — the value of attribute ``A`` of object ``X`` in store
  ``S`` (the paper's ``S(X·A)``).
* ``upd(S, X, A, V)`` — the store ``S(X·A := V)``.
* ``new(S)`` — the next object to be allocated in ``S``.
* ``succ(S)`` — the store after allocating ``new(S)`` (the paper's ``S+``).

Predicate symbols
-----------------
* ``alive(S, X)`` — object ``X`` is allocated in ``S``.
* ``linc(G, A)`` — the paper's ``G ≽ A``: attribute ``A`` is included in
  ``G`` under the reflexive-transitive closure of local (``in``) inclusions.
* ``rinc(F, G, B)`` — the paper's ``G —F→ B``: the program declares
  ``field F ... maps B into G``; ``F`` is a pivot field iff some ``rinc``
  fact holds of it.
* ``inc(S, X, A, Y, B)`` — the main inclusion relation: location ``X·A``
  includes location ``Y·B`` in store ``S``.

Naming conventions
------------------
* Attribute constants carry the ``attr$`` prefix so a formal parameter that
  happens to share a field's name cannot collide with it.
* Program variables (formals, and locals once quantified) keep their
  source names.
* ``$`` is the current-store variable threaded through wlp; ``$0`` is the
  method-entry store constant; ``null``, ``@true``, ``@false`` are the
  value constants (the latter two are the E-graph's distinguished nodes).
"""

from __future__ import annotations

from repro.logic.terms import App, Const, Formula, Pred, Term, Var

SEL = "sel"
UPD = "upd"
NEW = "new"
SUCC = "succ"
ALIVE = "alive"
LINC = "linc"
RINC = "rinc"
INC = "inc"

STORE_VAR = "$"
ENTRY_STORE = "$0"

NULL = Const("null")
TRUE_CONST = Const("@true")
FALSE_CONST = Const("@false")


def attr_const(name: str) -> Const:
    """The logical constant denoting a declared attribute."""
    return Const(f"attr${name}")


def program_var(name: str) -> Term:
    """A formal parameter or local variable as a logic variable.

    Formals stay free in the VC body and are closed to constants during
    assembly; locals are bound by the ``var`` quantifier in wlp.
    """
    return Var(name)


def store_var() -> Var:
    """The current-store variable ``$``."""
    return Var(STORE_VAR)


def entry_store() -> Const:
    """The method-entry store constant ``$0``."""
    return Const(ENTRY_STORE)


def sel(store: Term, obj: Term, attr: Term) -> App:
    return App(SEL, (store, obj, attr))


def upd(store: Term, obj: Term, attr: Term, value: Term) -> App:
    return App(UPD, (store, obj, attr, value))


def new(store: Term) -> App:
    return App(NEW, (store,))


def succ(store: Term) -> App:
    return App(SUCC, (store,))


def alive(store: Term, obj: Term) -> Pred:
    return Pred(ALIVE, (store, obj))


def linc(group: Term, attr: Term) -> Pred:
    return Pred(LINC, (group, attr))


def rinc(field: Term, group: Term, mapped: Term) -> Pred:
    return Pred(RINC, (field, group, mapped))


def inc(store: Term, obj1: Term, attr1: Term, obj2: Term, attr2: Term) -> Pred:
    return Pred(INC, (store, obj1, attr1, obj2, attr2))


#: Term-level counterparts used when building trigger patterns.
def alive_t(store: Term, obj: Term) -> App:
    return App(ALIVE, (store, obj))


def linc_t(group: Term, attr: Term) -> App:
    return App(LINC, (group, attr))


def rinc_t(field: Term, group: Term, mapped: Term) -> App:
    return App(RINC, (field, group, mapped))


def inc_t(store: Term, obj1: Term, attr1: Term, obj2: Term, attr2: Term) -> App:
    return App(INC, (store, obj1, attr1, obj2, attr2))
