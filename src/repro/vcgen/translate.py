"""The ``tr`` translation (Figure 2) and the mod/incl/ownExcl macros.

``tr`` comes in two flavours: :func:`tr_term` maps an oolong expression to
a logic term (object dereferences become ``sel`` on the given store);
:func:`tr_formula` maps a boolean-position expression to a logic formula
(equalities, comparisons, connectives). A boolean value read from a
variable or field is translated as equality with ``@true``.

The macros follow Section 4.1 of the paper:

* ``incl(X·A, w, S)`` — some designator ``E.f`` of the modifies list ``w``
  includes ``X·A``: the disjunction of ``inc(S, tr_S(E), f, X, A)``.
* ``mod(X·A, w, S) = ¬alive(S, X) ∨ incl(X·A, w, S)``.
* ``ownExcl(t, w, S)`` — the owner-exclusion property for a parameter
  value ``t``.

A modifies list is always evaluated with an *environment* mapping the
procedure's formal parameter names to terms — the formals themselves for a
method's own list, or the translated actuals for a callee's list (the
paper's ``ws``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import VerificationError
from repro.logic.nnf import FreshNames
from repro.logic.terms import (
    App,
    Eq,
    FalseF,
    Forall,
    Formula,
    Implies,
    IntLit,
    Not,
    Pred,
    Term,
    TrueF,
    Var,
    conj,
    disj,
)
from repro.oolong.ast import (
    BinOp,
    BoolConst,
    Designator,
    Expr,
    FieldAccess,
    Id,
    IntConst,
    NullConst,
    UnOp,
)
from repro.vcgen import vocab
from repro.vcgen.vocab import FALSE_CONST, NULL, TRUE_CONST, attr_const, inc, sel

#: Boolean operators translated at the formula level.
_FORMULA_OPS = {"=", "!=", "<", "<=", ">", ">=", "&&", "||"}


@dataclass
class TranslationContext:
    """Shared state for translating one implementation.

    ``env`` maps formal-parameter and local-variable names to the terms
    that denote them (usually ``Var(name)``); ``fresh`` supplies the bound
    variable names introduced by wlp and the macros.
    """

    env: Dict[str, Term]
    fresh: FreshNames = field(default_factory=FreshNames)

    def lookup(self, name: str) -> Term:
        term = self.env.get(name)
        if term is None:
            raise VerificationError(f"unbound program variable {name!r}")
        return term


# ---------------------------------------------------------------------------
# tr
# ---------------------------------------------------------------------------


def tr_term(expr: Expr, store: Term, ctx: TranslationContext) -> Term:
    """Translate an expression to a term, reading fields from ``store``."""
    if isinstance(expr, NullConst):
        return NULL
    if isinstance(expr, BoolConst):
        return TRUE_CONST if expr.value else FALSE_CONST
    if isinstance(expr, IntConst):
        return IntLit(expr.value)
    if isinstance(expr, Id):
        return ctx.lookup(expr.name)
    if isinstance(expr, FieldAccess):
        return sel(store, tr_term(expr.obj, store, ctx), attr_const(expr.attr))
    if isinstance(expr, BinOp):
        left = tr_term(expr.left, store, ctx)
        right = tr_term(expr.right, store, ctx)
        if expr.op in _FORMULA_OPS:
            # A boolean operator in term position: uninterpreted encoding.
            return App(f"@{expr.op}", (left, right))
        return App(expr.op, (left, right))
    if isinstance(expr, UnOp):
        operand = tr_term(expr.operand, store, ctx)
        if expr.op == "-":
            return App("-", (IntLit(0), operand))
        return App("@!", (operand,))
    raise VerificationError(f"cannot translate expression {expr!r}")


def tr_formula(expr: Expr, store: Term, ctx: TranslationContext) -> Formula:
    """Translate a boolean-position expression to a formula."""
    if isinstance(expr, BoolConst):
        return TrueF() if expr.value else FalseF()
    if isinstance(expr, BinOp):
        if expr.op == "&&":
            return conj(
                (
                    tr_formula(expr.left, store, ctx),
                    tr_formula(expr.right, store, ctx),
                )
            )
        if expr.op == "||":
            return disj(
                (
                    tr_formula(expr.left, store, ctx),
                    tr_formula(expr.right, store, ctx),
                )
            )
        if expr.op == "=":
            return Eq(tr_term(expr.left, store, ctx), tr_term(expr.right, store, ctx))
        if expr.op == "!=":
            return Not(
                Eq(tr_term(expr.left, store, ctx), tr_term(expr.right, store, ctx))
            )
        if expr.op in ("<", "<=", ">", ">="):
            return Pred(
                expr.op,
                (tr_term(expr.left, store, ctx), tr_term(expr.right, store, ctx)),
            )
    if isinstance(expr, UnOp) and expr.op == "!":
        return Not(tr_formula(expr.operand, store, ctx))
    # A boolean value read from a variable or a field.
    return Eq(tr_term(expr, store, ctx), TRUE_CONST)


def welldef_premises(
    exprs, store: Term, ctx: TranslationContext
) -> Formula:
    """Well-definedness of expression evaluation, as an assumption.

    The paper leaves the conditions stipulating well-defined evaluation
    implicit; its example proofs rely on them (e.g. Section 3's
    ``n := v.cnt`` supplies the non-nullness of ``v`` that the pivot
    uniqueness and owner exclusion arguments consume). We adopt blocking
    semantics: every dereferenced sub-expression is assumed non-null and
    allocated in the store it is read from.
    """
    premises: List[Formula] = []
    seen = set()

    def visit(expr: Expr) -> None:
        if isinstance(expr, FieldAccess):
            visit(expr.obj)
            obj = tr_term(expr.obj, store, ctx)
            if obj not in seen:
                seen.add(obj)
                premises.append(Not(Eq(obj, NULL)))
                premises.append(vocab.alive(store, obj))
        elif isinstance(expr, BinOp):
            visit(expr.left)
            visit(expr.right)
        elif isinstance(expr, UnOp):
            visit(expr.operand)

    for expr in exprs:
        visit(expr)
    return conj(premises)


def tr_designator_prefix(
    designator: Designator,
    env: Dict[str, Term],
    store: Term,
) -> Term:
    """``tr_S(E)`` for a modifies entry ``E.f``: the owning object's term."""
    root = env.get(designator.root)
    if root is None:
        raise VerificationError(
            f"modifies designator {designator} has unbound root {designator.root!r}"
        )
    term = root
    for field_name in designator.path:
        term = sel(store, term, attr_const(field_name))
    return term


# ---------------------------------------------------------------------------
# incl / mod / ownExcl
# ---------------------------------------------------------------------------


def incl_formula(
    obj: Term,
    attr: Term,
    modifies: Sequence[Designator],
    env: Dict[str, Term],
    store: Term,
) -> Formula:
    """``incl(obj·attr, w, S)``: some listed location includes ``obj·attr``."""
    disjuncts: List[Formula] = []
    for designator in modifies:
        owner = tr_designator_prefix(designator, env, store)
        disjuncts.append(inc(store, owner, attr_const(designator.attr), obj, attr))
    return disj(disjuncts)


def mod_formula(
    obj: Term,
    attr: Term,
    modifies: Sequence[Designator],
    env: Dict[str, Term],
    store: Term,
) -> Formula:
    """``mod(obj·attr, w, S) = ¬alive(S, obj) ∨ incl(obj·attr, w, S)``."""
    return disj(
        (
            Not(vocab.alive(store, obj)),
            incl_formula(obj, attr, modifies, env, store),
        )
    )


def own_excl_formula(
    value: Term,
    modifies: Sequence[Designator],
    env: Dict[str, Term],
    store: Term,
    fresh: FreshNames,
) -> Formula:
    """``ownExcl(value, w, S)`` (Section 4.1 of the paper).

    The non-null value of a pivot field ``F`` of an object ``X`` may equal
    ``value`` only if the modifies list grants no licence on the group the
    pivot maps into::

        forall X, A, F, B ::
            rinc(F, A, B) & value = sel(S, X, F) & value != null
            ==> !incl(X·A, w, S)
    """
    if not modifies:
        return TrueF()
    x = Var(fresh.fresh("oeX"))
    a = Var(fresh.fresh("oeA"))
    f = Var(fresh.fresh("oeF"))
    b = Var(fresh.fresh("oeB"))
    premise = conj(
        (
            vocab.rinc(f, a, b),
            Eq(value, sel(store, x, f)),
            Not(Eq(value, NULL)),
        )
    )
    conclusion = Not(incl_formula(x, a, modifies, env, store))
    trigger = (
        vocab.rinc_t(f, a, b),
        App(vocab.SEL, (store, x, f)),
    )
    return Forall(
        (x.name, a.name, f.name, b.name),
        Implies(premise, conclusion),
        (trigger,),
        "ownExcl",
        1,
    )
