"""Verification-condition generation (Section 4 of the paper).

* :mod:`repro.vcgen.vocab` — the logical vocabulary: ``sel``/``upd``
  stores, ``alive``/``new``/``succ`` allocation, the three inclusion
  relations ``linc``/``rinc``/``inc``, and naming conventions.
* :mod:`repro.vcgen.translate` — the ``tr`` translation of oolong
  expressions (Figure 2) and the ``mod``/``incl``/``ownExcl`` macros.
* :mod:`repro.vcgen.wlp` — weakest liberal preconditions for commands
  (Figure 2) and method calls (Figure 3).
* :mod:`repro.vcgen.background` — the universal background predicate UBP
  and the scope-dependent background predicate BP_D, with hand-written
  E-matching triggers.
* :mod:`repro.vcgen.vc` — ``Init(m)`` and per-implementation VC assembly
  (formula (1) of the paper).
* :mod:`repro.vcgen.checker` — the end-to-end checker driver.
"""

from repro.vcgen.background import scope_background, universal_background
from repro.vcgen.checker import CheckReport, ImplVerdict, check_scope
from repro.vcgen.translate import TranslationContext, incl_formula, mod_formula, own_excl_formula, tr_formula, tr_term
from repro.vcgen.vc import VCBundle, init_formula, vc_for_impl
from repro.vcgen.wlp import wlp

__all__ = [
    "CheckReport",
    "ImplVerdict",
    "TranslationContext",
    "VCBundle",
    "check_scope",
    "incl_formula",
    "init_formula",
    "mod_formula",
    "own_excl_formula",
    "scope_background",
    "tr_formula",
    "tr_term",
    "universal_background",
    "vc_for_impl",
    "wlp",
]
