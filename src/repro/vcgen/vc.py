"""Assembly of per-implementation verification conditions (formula (1)).

``VC_D(m, C) = UBP & BP_D & Init(m) ==> wlp_{w,$0}(C, true)``

``Init(m)`` contributes, for every formal parameter ``t`` of ``m``,
``ownExcl(t, w, $0) & alive($0, t)`` (the paper's (5)); the ``$ = $0``
identification is performed by substituting the entry store for the free
current-store variable of the wlp. Formal parameters are encoded as logic
constants bearing their source names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import VerificationError
from repro.logic.nnf import FreshNames
from repro.logic.subst import subst_formula
from repro.logic.terms import Const, Formula, IntLit, Not, Pred, TrueF, conj
from repro.oolong.ast import (
    Assert,
    Assign,
    AssignNew,
    Assume,
    BinOp,
    Call,
    Choice,
    ImplDecl,
    IntConst,
    ProcDecl,
    Seq,
    UnOp,
    VarCmd,
)
from repro.oolong.program import Scope
from repro.prover.core import Limits, ProverResult, prove_valid
from repro.vcgen.background import scope_background, universal_background
from repro.vcgen.translate import TranslationContext, own_excl_formula
from repro.vcgen.vocab import alive, entry_store
from repro.vcgen.wlp import OBLIGATION_MARKER, ObligationInfo, WlpContext, wlp


def init_formula(scope: Scope, proc: ProcDecl, fresh: FreshNames) -> Formula:
    """``Init(m)``: owner exclusion and liveness of every formal at entry."""
    env = {param: Const(param) for param in proc.params}
    conjuncts: List[Formula] = []
    for param in proc.params:
        own = own_excl_formula(
            Const(param), proc.modifies, env, entry_store(), fresh
        )
        if not isinstance(own, TrueF):
            conjuncts.append(own)
        conjuncts.append(alive(entry_store(), Const(param)))
    return conj(conjuncts)


def _literals_in(impl: ImplDecl) -> List[int]:
    """All integer literals occurring in the implementation body."""
    found: List[int] = []

    def expr(node) -> None:
        if isinstance(node, IntConst):
            found.append(node.value)
        elif isinstance(node, BinOp):
            expr(node.left)
            expr(node.right)
        elif isinstance(node, UnOp):
            expr(node.operand)

    def cmd(node) -> None:
        if isinstance(node, (Assert, Assume)):
            expr(node.condition)
        elif isinstance(node, Assign):
            expr(node.target)
            expr(node.rhs)
        elif isinstance(node, AssignNew):
            expr(node.target)
        elif isinstance(node, Seq):
            cmd(node.first)
            cmd(node.second)
        elif isinstance(node, Choice):
            cmd(node.left)
            cmd(node.right)
        elif isinstance(node, VarCmd):
            cmd(node.body)
        elif isinstance(node, Call):
            for arg in node.args:
                expr(arg)

    cmd(impl.body)
    return sorted(set(found))


def _sort_facts(impl: ImplDecl) -> List[Formula]:
    """``isObj`` negations for the literal values the body mentions."""
    facts: List[Formula] = [
        Not(Pred("isObj", (Const("@true"),))),
        Not(Pred("isObj", (Const("@false"),))),
    ]
    for value in _literals_in(impl):
        facts.append(Not(Pred("isObj", (IntLit(value),))))
    return facts


def formula_nodes(formula: Formula) -> int:
    """Number of formula/term nodes — the telemetry size measure of a VC.

    Generic over the dataclass shape of :mod:`repro.logic.terms`: every
    dataclass instance counts as one node and its fields are walked,
    tuples are walked through, leaves (names, ints, None) are free.
    """
    import dataclasses

    count = 0
    stack = [formula]
    while stack:
        node = stack.pop()
        if dataclasses.is_dataclass(node) and not isinstance(node, type):
            count += 1
            for field_info in dataclasses.fields(node):
                stack.append(getattr(node, field_info.name))
        elif isinstance(node, (tuple, list)):
            stack.extend(node)
    return count


def _marker_traversal_order(goal: Formula) -> List[int]:
    """Obligation-marker ids in left-to-right goal order (first occurrence)."""
    order: List[int] = []
    seen = set()

    def walk(formula) -> None:
        from repro.logic.terms import (
            And as _And,
            Exists as _Exists,
            Forall as _Forall,
            Iff as _Iff,
            Implies as _Implies,
            Not as _Not,
            Or as _Or,
        )

        if isinstance(formula, Pred):
            if (
                formula.name == OBLIGATION_MARKER
                and formula.args
                and isinstance(formula.args[0], IntLit)
            ):
                ident = formula.args[0].value
                if ident not in seen:
                    seen.add(ident)
                    order.append(ident)
        elif isinstance(formula, _Not):
            walk(formula.body)
        elif isinstance(formula, _And):
            for conjunct in formula.conjuncts:
                walk(conjunct)
        elif isinstance(formula, _Or):
            for disjunct in formula.disjuncts:
                walk(disjunct)
        elif isinstance(formula, _Implies):
            walk(formula.antecedent)
            walk(formula.consequent)
        elif isinstance(formula, _Iff):
            walk(formula.left)
            walk(formula.right)
        elif isinstance(formula, (_Forall, _Exists)):
            walk(formula.body)

    walk(goal)
    return order


@dataclass
class VCBundle:
    """A ready-to-prove verification condition for one implementation."""

    impl: ImplDecl
    proc: ProcDecl
    hypotheses: List[Formula]
    goal: Formula
    obligations: List[ObligationInfo] = field(default_factory=list)

    def prove(
        self, limits: Optional[Limits] = None, *, explain: bool = False
    ) -> ProverResult:
        from repro import obs
        from repro.testing.faults import fault_point

        # Span nesting: stage ("prove") → implementation → VC, the same
        # stage name the fault harness injects at, so traces and faults
        # line up. All three close even when the fault (or the prover)
        # raises.
        budget = limits.time_budget if limits is not None else None
        with obs.span("prove", impl=self.impl.name, time_budget=budget):
            with obs.span(self.impl.name, obs.CAT_IMPL):
                with obs.span(
                    f"vc {self.impl.name}",
                    obs.CAT_VC,
                    hypotheses=len(self.hypotheses),
                    obligations=len(self.obligations),
                ) as sp:
                    result = fault_point(
                        "prove",
                        prove_valid(
                            self.hypotheses,
                            self.goal,
                            limits,
                            explain=explain,
                        ),
                    )
                    sp.set(
                        verdict=result.verdict.value,
                        instantiations=result.stats.instantiations,
                        branches=result.stats.branches,
                        merges=result.stats.merges,
                    )
                    return result

    def failed_obligation(self, result: ProverResult) -> Optional[ObligationInfo]:
        """The obligation a non-proof got stuck on, if identifiable.

        Under the ordered goal negation, a saturated branch asserts the
        markers of every obligation on the control path up to and including
        the one being refuted — so among the true markers, the one latest
        in the goal's left-to-right traversal order names the refuted
        obligation. (Registration order cannot be used: wlp builds the
        formula backwards.)
        """
        markers = set(result.stats.sat_markers)
        if not markers:
            return None
        order = _marker_traversal_order(self.goal)
        latest = None
        for ident in order:
            if ident in markers:
                latest = ident
        if latest is not None and 0 <= latest < len(self.obligations):
            return self.obligations[latest]
        return None


def vc_for_impl(
    scope: Scope, impl: ImplDecl, *, owner_exclusion: bool = True
) -> VCBundle:
    """Generate the verification condition for ``impl`` in ``scope``.

    ``owner_exclusion=False`` drops both the call-site owner-exclusion
    obligations and the corresponding ``Init`` assumptions — the unsound
    naive baseline of the Section 3 experiments.
    """
    from repro import obs

    with obs.span("vcgen", impl=impl.name):
        with obs.span(impl.name, obs.CAT_IMPL):
            return _build_vc(scope, impl, owner_exclusion=owner_exclusion)


def _build_vc(
    scope: Scope, impl: ImplDecl, *, owner_exclusion: bool
) -> VCBundle:
    from repro import obs

    with obs.span(f"vc {impl.name}", obs.CAT_VC) as sp:
        return _build_vc_timed(
            scope, impl, sp, owner_exclusion=owner_exclusion
        )


def _build_vc_timed(
    scope: Scope, impl: ImplDecl, sp, *, owner_exclusion: bool
) -> VCBundle:
    from repro import obs

    proc = scope.proc(impl.name)
    if proc is None:
        raise VerificationError(
            f"implementation of undeclared procedure {impl.name!r}"
        )
    fresh = FreshNames()
    ctx = TranslationContext(
        env={param: Const(param) for param in proc.params}, fresh=fresh
    )
    wctx = WlpContext(
        scope=scope,
        proc=proc,
        ctx=ctx,
        entry_store=entry_store(),
        owner_exclusion=owner_exclusion,
    )
    body_wlp = wlp(impl.body, TrueF(), wctx)
    goal = subst_formula(body_wlp, {"$": entry_store()})

    # Init(m) is kept even for the naive baseline: the "yes" horn of the
    # paper's Section 3 dilemma *assumes* the alias-confinement facts on
    # entry while no longer enforcing them at call sites — which is exactly
    # what makes it modularly unsound.
    hypotheses = (
        universal_background()
        + scope_background(scope)
        + _sort_facts(impl)
        + [init_formula(scope, proc, fresh)]
    )
    from repro.testing.faults import fault_point

    bundle = VCBundle(
        impl=impl,
        proc=proc,
        hypotheses=hypotheses,
        goal=goal,
        obligations=list(wctx.obligations),
    )
    if obs.active():
        # VC size telemetry — the node walk is not free, so it only runs
        # under an installed tracer.
        goal_nodes = formula_nodes(goal)
        sp.set(
            goal_nodes=goal_nodes,
            background_axioms=len(hypotheses),
            obligations=len(bundle.obligations),
        )
        registry = obs.metrics()
        registry.inc("vcgen.vcs")
        registry.inc("vcgen.goal_nodes", goal_nodes)
        registry.inc("vcgen.background_axioms", len(hypotheses))
        registry.inc("vcgen.obligations", len(bundle.obligations))
    return fault_point("vcgen", bundle)
