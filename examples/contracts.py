#!/usr/bin/env python3
"""Pre/postconditions via the paper's assert/assume discipline (Section 2).

The paper points out that oolong needs no special contract constructs:

    "for a precondition P, precede every call to p with assert P and start
    every implementation of p with assume P; for a postcondition Q, end
    every implementation of p with assert Q and follow each call to p
    with assume Q"

This reproduction offers ``requires``/``ensures`` surface syntax and
desugars it with exactly that recipe — so contracts are checked both
statically (in the VCs) and at runtime (by the interpreter), with no new
machinery. Combined with modifies lists, callers get the full
specification: *what* a procedure changes and *to what*.

Run:  python examples/contracts.py
"""

from repro import check_program, parse_program
from repro.prover.core import Limits
from repro.semantics.interp import OutcomeKind, explore_program

LIMITS = Limits(time_budget=60.0)

COUNTER = """
group state
field count in state

proc reset(c) modifies c.state requires c != null ensures c.count = 0
impl reset(c) { c.count := 0 }

proc bump(c) modifies c.state requires c != null
impl bump(c) { c.count := c.count + 1 }

proc fresh_counter()
impl fresh_counter() {
  var c in
    c := new() ;
    reset(c) ;
    assert c.count = 0 ;
    bump(c)
  end
}
"""

# The same library with a reset that breaks its postcondition.
BROKEN = COUNTER.replace("impl reset(c) { c.count := 0 }",
                         "impl reset(c) { c.count := 7 }")

# A client that relies on reset's postcondition to prove its own assert.
CLIENT = """
group state
field count in state
proc reset(c) modifies c.state requires c != null ensures c.count = 0
impl reset(c) { c.count := 0 }
proc audit(c) modifies c.state requires c != null
impl audit(c) {
  reset(c) ;
  assert c.count = 0
}
"""


def verify_counter() -> None:
    print("== the counter library verifies, contracts included ==")
    report = check_program(COUNTER, LIMITS)
    print(report.describe())
    assert report.ok


def catch_broken_postcondition() -> None:
    print("\n== a reset violating 'ensures c.count = 0' is rejected ==")
    report = check_program(BROKEN, LIMITS)
    verdict = report.verdict_for("reset")
    print(verdict.describe())
    assert not verdict.ok

    print("   ... and the interpreter catches it at runtime:")
    scope = parse_program(BROKEN)
    outcomes = explore_program(scope, "fresh_counter")
    failing = [o for o in outcomes if o.kind is OutcomeKind.WRONG_ASSERT]
    for outcome in failing:
        print(f"   runtime: {outcome.detail}")
    assert failing


def client_relies_on_postcondition() -> None:
    print("\n== a caller discharges its assert from reset's contract ==")
    report = check_program(CLIENT, LIMITS)
    print(report.describe())
    assert report.ok


def main() -> None:
    verify_counter()
    catch_broken_postcondition()
    client_relies_on_postcondition()
    print("\ncontract scenarios complete")


if __name__ == "__main__":
    main()
