#!/usr/bin/env python3
"""A stack implemented over a vector: rep inclusions and pivot fields.

This is the paper's running example (Sections 2-3): the stack's public
``contents`` group includes, through the pivot field ``vec``, the ``elems``
group of the underlying vector object. The example shows:

1. the full library verifying — including ``push``, which legally reaches
   through the pivot;
2. the Section 3.0 alias leak (``r.obj := st.vec``) being rejected by the
   *pivot uniqueness* restriction;
3. the Section 3.1 forbidden call (``w(st, st.vec)``) being rejected by
   *owner exclusion*, while ``w`` itself verifies;
4. the runtime ground truth: executing the leaking program with the
   restrictions' monitors disabled makes the client's assertion actually
   fail.

Run:  python examples/stack_library.py
"""

from repro import check_program, parse_program
from repro.corpus.programs import (
    SECTION3_CLIENT,
    SECTION3_LEAKING_M,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_W,
    STACK_VECTOR,
)
from repro.prover.core import Limits
from repro.restrictions.pivot import check_pivot_uniqueness
from repro.semantics.interp import ExplorationConfig, OutcomeKind, explore_program

LIMITS = Limits(time_budget=60.0)


def check_library() -> None:
    print("== 1. the stack-over-vector library ==")
    report = check_program(STACK_VECTOR, LIMITS)
    print(report.describe())
    assert report.ok


def reject_alias_leak() -> None:
    print("\n== 2. Section 3.0: the pivot-leaking impl of m ==")
    scope = parse_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
    violations = check_pivot_uniqueness(scope)
    for violation in violations:
        print(f"rejected: {violation}")
    assert violations, "the leak must be caught syntactically"


def reject_owner_violation() -> None:
    print("\n== 3. Section 3.1: w verifies, w(st, st.vec) does not ==")
    report = check_program(SECTION3_W, LIMITS)
    print(report.describe())
    assert report.verdict_for("w").ok

    report = check_program(SECTION3_W + SECTION3_OWNER_BAD_CALL, LIMITS)
    bad = report.verdict_for("bad")
    print(f"impl bad (passes st.vec to w): {bad.status.value}")
    assert not bad.ok, "owner exclusion must reject the call"


def runtime_ground_truth() -> None:
    print("\n== 4. runtime: the leak really breaks the client ==")
    from repro.corpus.programs import SECTION3_CLIENT_INIT, SECTION3_UNSOUND_IMPLS

    scope = parse_program(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
    config = ExplorationConfig(
        check_modifies=False,
        check_pivot_uniqueness=False,
        check_owner_exclusion=False,
    )
    outcomes = explore_program(scope, "q2", config=config)
    failing = [o for o in outcomes if o.kind is OutcomeKind.WRONG_ASSERT]
    for outcome in failing:
        print(f"runtime failure: {outcome.detail}")
    assert failing, "without the restrictions the assertion must fail"


def main() -> None:
    check_library()
    reject_alias_leak()
    reject_owner_violation()
    runtime_ground_truth()
    print("\nall stack-library scenarios behaved as the paper describes")


if __name__ == "__main__":
    main()
