#!/usr/bin/env python3
"""Quickstart: specify and statically check side effects with data groups.

The scenario is the paper's Section 2 rational-number library: the public
interface promises that ``normalize`` only modifies the abstract ``value``
group; the private implementation reveals that ``value`` contains the
``num``/``den`` representation, which ``normalize`` rewrites.

Run:  python examples/quickstart.py
"""

from repro import check_program
from repro.prover.core import Limits

GOOD = """
// Public interface: value is an abstract data group.
group value
proc normalize(r) modifies r.value

// Private implementation: value hides the representation fields.
field num in value
field den in value
impl normalize(r) {
  assume r != null ;
  r.num := 1 ;
  r.den := 1
}
"""

# The same library with an implementation that oversteps its licence: it
# writes a field *outside* the value group it declared.
BAD = """
group value
field num in value
field cached   // NOT in value: normalize has no licence to touch it
proc normalize(r) modifies r.value
impl normalize(r) {
  assume r != null ;
  r.num := 1 ;
  r.cached := 0
}
"""


def main() -> None:
    limits = Limits(time_budget=30.0)

    print("== checking the honest normalize ==")
    report = check_program(GOOD, limits)
    print(report.describe())
    assert report.ok, "the honest implementation must verify"

    print("\n== checking the overstepping normalize ==")
    report = check_program(BAD, limits)
    print(report.describe())
    assert not report.ok, "writing outside the declared group must be caught"
    verdict = report.verdict_for("normalize")
    print(f"\ncaught: normalize oversteps its modifies licence "
          f"({verdict.status.value})")


if __name__ == "__main__":
    main()
