#!/usr/bin/env python3
"""Piecewise checking with interface/implementation modules.

The paper (Sections 2 and 4): a module's public interface is a subset of
its private implementation scope, and "the scope of an implementation
module M would typically be the set of declarations in M and in the
interface modules that M transitively imports." This example builds a
three-module program — vector, stack-over-vector, client — and checks each
module in exactly that scope. The client is verified knowing only the
stack *interface*: it never sees the pivot field ``vec``. By scope
monotonicity the piecewise verdicts remain valid for the linked program,
which the interpreter then runs clean.

Run:  python examples/modules.py
"""

from repro.modular.modules import ModuleSystem
from repro.prover.core import Limits
from repro.semantics.interp import OutcomeKind, explore_program

LIMITS = Limits(time_budget=90.0)


def build_system() -> ModuleSystem:
    system = ModuleSystem()
    system.define(
        "vector",
        interface="""
        group elems
        field cnt in elems
        proc vec_bump(v) modifies v.elems requires v != null
        """,
        implementation="""
        impl vec_bump(v) { v.cnt := 1 }
        """,
    )
    system.define(
        "stack",
        interface="""
        group contents
        proc push(s) modifies s.contents requires s != null
        """,
        implementation="""
        field vec in contents maps elems into contents
        impl push(s) {
          ( assume s.vec = null ; s.vec := new()
            []
            assume s.vec != null ; skip ) ;
          vec_bump(s.vec)
        }
        """,
        imports=["vector"],
    )
    system.define(
        "client",
        interface="proc main()",
        implementation="""
        impl main() {
          var s in
            s := new() ;
            push(s) ;
            push(s)
          end
        }
        """,
        imports=["stack"],
    )
    return system


def main() -> None:
    system = build_system()

    print("== scopes ==")
    for name in system.modules():
        interface = system.interface_scope(name)
        implementation = system.implementation_scope(name)
        print(
            f"{name}: interface sees {len(interface)} decls, "
            f"implementation sees {len(implementation)}"
        )
    client_view = system.interface_scope("client")
    assert not client_view.is_field("vec"), "the pivot must stay private"
    print("client never sees the stack's pivot field 'vec'")

    print("\n== piecewise checking, one module at a time ==")
    for name, report in system.check_all(LIMITS).items():
        print(f"[{name}]")
        print("  " + report.describe().replace("\n", "\n  "))
        assert report.ok

    print("\n== the linked program runs clean ==")
    outcomes = explore_program(system.whole_program_scope(), "main")
    kinds = sorted(o.kind.value for o in outcomes)
    print(f"outcomes: {kinds}")
    assert any(o.kind is OutcomeKind.NORMAL for o in outcomes)
    assert not any(o.wrong for o in outcomes)

    print("\nmodule scenarios complete")


if __name__ == "__main__":
    main()
