#!/usr/bin/env python3
"""Cyclic rep inclusions: the paper's linked-list example (Section 5).

The list's data group ``g`` includes, through the pivot ``next``, the
``g`` group of the tail — a *cyclic* rep inclusion ``g —next→ g``.
``updateAll`` recursively increments every ``value`` field and is licensed
by ``t.g`` alone.

The paper reports that its Simplify-based checker *diverged* on cyclic
inclusions ("the prover [loops] irrevocably"); this reproduction's bounded
relevancy-filtered prover closes the proof mechanically. The example also
shows the runtime side: the interpreter executes ``updateAll`` over a real
list under the modifies monitor, and a variant that touches a field
outside ``g`` is both rejected statically and flagged at runtime.

Run:  python examples/linked_list.py
"""

from repro import check_program, parse_program
from repro.corpus.programs import LINKED_LIST
from repro.prover.core import Limits
from repro.semantics.interp import ExplorationConfig, Interpreter, OutcomeKind
from repro.semantics.store import RuntimeStore

LIMITS = Limits(time_budget=60.0)

#: updateAll plus a driver that builds a 3-node list and walks it.
DRIVER = """
proc main()
impl main() {
  var a in var b in var c in
    a := new() ; b := new() ; c := new() ;
    a.next := null ; b.next := null ; c.next := null ;
    a.value := 10 ; b.value := 20 ; c.value := 30 ;
    walk(a, b, c)
  end end end
}
proc walk(a, b, c) modifies a.g, b.g, c.g
impl walk(a, b, c) {
  assume a != null ; assume b != null ; assume c != null ;
  updateAll(a) ;
  assert a.value = 11
}
"""

#: A broken updateAll that also touches `owner`, which is outside g.
BROKEN = """
group g
field value in g
field owner
field next maps g into g
proc updateAll(t) modifies t.g
impl updateAll(t) {
  assume t != null ;
  t.value := t.value + 1 ;
  t.owner := null
}
"""


def verify_update_all() -> None:
    print("== mechanical verification of updateAll (cyclic g -next-> g) ==")
    report = check_program(LINKED_LIST, LIMITS)
    print(report.describe())
    verdict = report.verdict_for("updateAll")
    stats = verdict.stats
    print(
        f"instantiations={stats.instantiations} branches={stats.branches} "
        f"rounds={stats.rounds} time={stats.elapsed:.3f}s"
    )
    assert report.ok, "updateAll must verify (the paper's Simplify diverged here)"


def reject_broken_variant() -> None:
    print("\n== a variant writing outside its licence is rejected ==")
    report = check_program(BROKEN, LIMITS)
    verdict = report.verdict_for("updateAll")
    print(verdict.describe())
    assert not verdict.ok


def run_on_a_real_list() -> None:
    print("\n== running updateAll over a three-node list ==")
    scope = parse_program(LINKED_LIST + DRIVER)
    interp = Interpreter(scope)
    outcomes = interp.explore_call("main")
    kinds = sorted(o.kind.value for o in outcomes)
    print(f"outcomes: {kinds}")
    # The only surviving well-defined path updates the list and passes the
    # assert; `next := null` writes are licensed because the nodes are
    # fresh in main's frame.
    assert any(o.kind is OutcomeKind.NORMAL for o in outcomes)
    assert not any(o.wrong for o in outcomes)


def runtime_catches_broken_variant() -> None:
    print("\n== the modifies monitor flags the broken variant at runtime ==")
    scope = parse_program(BROKEN + DRIVER.replace("assert a.value = 11", "skip"))
    interp = Interpreter(scope)
    outcomes = interp.explore_call("main")
    flagged = [o for o in outcomes if o.kind is OutcomeKind.MODIFIES_VIOLATION]
    for outcome in flagged:
        print(f"flagged: {outcome.detail}")
    assert flagged


def main() -> None:
    verify_update_all()
    reject_broken_variant()
    run_on_a_real_list()
    runtime_catches_broken_variant()
    print("\nlinked-list scenarios complete")


if __name__ == "__main__":
    main()
