#!/usr/bin/env python3
"""Modular soundness: scope monotonicity, and how the naive system loses it.

The paper's meta-claim: verification is *scope monotone* — a VC valid in a
scope D stays valid in every extension E ⊇ D, because extensions only add
background axioms. This example:

1. verifies the Section 3.0 client ``q`` in its interface-only scope;
2. re-verifies it in the extension that reveals the pivot field and the
   private stack implementations — still valid (monotone);
3. runs the *naive* baseline (restrictions disabled) on the extension that
   contains the alias-leaking ``m``: every implementation is accepted, yet
   executing the client makes its assert fail at runtime — the soundness
   the restrictions buy;
4. sweeps the corpus through the monotonicity harness.

Run:  python examples/modular_soundness.py
"""

from repro import check_program, parse_program
from repro.baselines.naive_modular import naive_check_scope
from repro.corpus.programs import (
    LINKED_LIST,
    ONCE_TWICE,
    SECTION3_CLIENT,
    SECTION3_CLIENT_INIT,
    SECTION3_HONEST_IMPLS,
    SECTION3_UNSOUND_IMPLS,
    SECTION5_FIRST,
)
from repro.modular.monotonicity import check_monotonicity
from repro.oolong.parser import parse_program_text
from repro.prover.core import Limits
from repro.semantics.interp import ExplorationConfig, OutcomeKind, explore_program

LIMITS = Limits(time_budget=90.0)


def verify_in_small_scope() -> None:
    print("== 1. q verifies in the interface-only scope ==")
    report = check_program(SECTION3_CLIENT, LIMITS)
    print(report.describe())
    assert report.ok


def verify_in_extension() -> None:
    print("\n== 2. q still verifies when the pivot is revealed ==")
    scope = parse_program(SECTION3_CLIENT)
    extension = parse_program_text(SECTION3_HONEST_IMPLS)
    monotonicity = check_monotonicity(scope, extension, LIMITS)
    for result in monotonicity.results:
        print(
            f"impl {result.impl_name}: base={result.base_verdict.value} "
            f"extended={result.extended_verdict.value}"
        )
    assert monotonicity.monotone


def naive_system_is_unsound() -> None:
    print("\n== 3. the naive system accepts the forbidden call; runtime disagrees ==")
    from repro.corpus.programs import (
        SECTION3_OWNER_BAD_CALL,
        SECTION3_OWNER_DRIVER,
        SECTION3_W,
    )

    scope = parse_program(
        SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER
    )
    report = naive_check_scope(scope, LIMITS)
    print(report.describe())
    assert report.ok, "the naive checker must accept every implementation"

    config = ExplorationConfig(
        check_modifies=False,
        check_pivot_uniqueness=False,
        check_owner_exclusion=False,
    )
    outcomes = explore_program(scope, "main", config=config)
    failing = [o for o in outcomes if o.kind is OutcomeKind.WRONG_ASSERT]
    for outcome in failing:
        print(f"runtime: {outcome.detail}")
    assert failing, "the naively-verified program must fail at runtime"


def corpus_sweep() -> None:
    print("\n== 4. monotonicity sweep over the verifiable corpus ==")
    extension_source = "group extra_group\nfield extra_field in extra_group"
    for name, source in (
        ("EX-5.1", SECTION5_FIRST),
        ("EX-5.2", ONCE_TWICE),
        ("EX-5.3", LINKED_LIST),
    ):
        scope = parse_program(source)
        extension = parse_program_text(extension_source)
        monotonicity = check_monotonicity(scope, extension, LIMITS)
        status = "monotone" if monotonicity.monotone else "VIOLATED"
        print(f"{name}: {status} over {len(monotonicity.results)} impls")
        assert monotonicity.monotone


def main() -> None:
    verify_in_small_scope()
    verify_in_extension()
    naive_system_is_unsound()
    corpus_sweep()
    print("\nmodular soundness scenarios complete")


if __name__ == "__main__":
    main()
