"""SCALE: checker cost versus program size.

The paper's feasibility claim ("using a theorem prover as part of a
program analysis engine is feasible") made measurable: wall time of the
full check along four synthetic axes — declaration count, local-inclusion
depth, pivot-chain depth, and call-chain length. The asserted shape: all
sweeps verify, and cost grows without blowing past the budget.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import check_program
from repro.corpus.generators import (
    generate_call_chain,
    generate_deep_groups,
    generate_pivot_tower,
    generate_wide_scope,
)

SWEEPS = {
    "wide-scope": (generate_wide_scope, (4, 8, 16)),
    "deep-groups": (generate_deep_groups, (2, 6, 12)),
    "pivot-tower": (generate_pivot_tower, (1, 2, 3)),
    "call-chain": (generate_call_chain, (1, 3, 6)),
}


@pytest.mark.parametrize("axis", sorted(SWEEPS))
def test_scaling_axis(benchmark, limits, axis):
    generator, sizes = SWEEPS[axis]
    results = {}

    def sweep():
        out = {}
        for size in sizes:
            out[size] = check_program(generator(size), limits)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    times = {}
    for size, report in results.items():
        assert report.ok, f"{axis}@{size}: {report.describe()}"
        times[size] = round(report.elapsed, 3)
    print_row("SCALE", axis=axis, seconds_by_size=times)
