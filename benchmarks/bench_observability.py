"""OBS-OVERHEAD: telemetry hooks must be free when nothing is installed.

Every instrumentation site of the pipeline (the seven stage boundaries
of ``repro.obs.stages.STAGES``, plus per-implementation and per-VC child
spans) crosses :func:`repro.obs.span`. With no tracer installed a
crossing is one module-global ``None`` check returning a shared no-op
context manager. The claim measured here: total hook cost on an
ordinary ``check_scope`` run over the examples corpus — crossings x
per-crossing cost — is under 1% of the run's wall-clock.

The event journal gets the same discipline: lifecycle emission sites
call :func:`repro.obs.events.emit` unconditionally, and with no journal
installed an emission is one module-global ``None`` check (the keyword
arguments are built by the caller either way, so the measured per-emit
cost includes them). The journal guard is emissions x per-emit cost
< 1% of wall-clock, and an armed journal with a live
:class:`~repro.obs.progress.ProgressRenderer` attached must stay within
a small constant factor of the bare run.

Run as a script (``python benchmarks/bench_observability.py``) it
re-measures and rewrites ``BENCH_observability.json`` at the repo root —
the committed head of the observability bench trajectory.
"""

import json
import os
import sys
import time

if __package__ in (None, ""):  # script mode: python benchmarks/bench_observability.py
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

from benchmarks.conftest import print_row
from repro import obs
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
BENCH_JSON = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_observability.json"
)


def _median_seconds(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _example_scopes():
    """The examples corpus (every ``examples/*.oolong``), parsed once."""
    scopes = []
    for name in sorted(os.listdir(EXAMPLES_DIR)):
        if not name.endswith(".oolong"):
            continue
        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            scope = Scope.from_source(handle.read(), name)
        check_well_formed(scope)
        scopes.append((name, scope))
    assert scopes, "examples corpus is empty"
    return scopes


def measure_overhead(limits):
    """The numbers behind both the pytest guard and the committed JSON."""
    scopes = _example_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    # Count how many spans the corpus run would record: crossings of the
    # null path equal spans recorded by an installed tracer.
    tracer = obs.Tracer()
    with obs.tracing(tracer):
        run_checks()
    crossings = len(tracer.spans)
    assert crossings > 0

    check_seconds = _median_seconds(run_checks, repeats=3)

    # Per-crossing cost of the null fast path (span + enter + exit),
    # amortized over a large batch so timer resolution doesn't dominate.
    batch = 100_000
    start = time.perf_counter()
    for _ in range(batch):
        with obs.span("prove"):
            pass
    per_crossing = (time.perf_counter() - start) / batch

    hook_seconds = crossings * per_crossing

    # Same discipline for the event journal: count what an armed journal
    # would record on the corpus run, then price the disabled emission.
    journal = obs.EventJournal()
    with obs.journaling(journal):
        run_checks()
    emissions = len(journal)
    assert emissions > 0

    from repro.obs import events as events_module

    assert events_module.journal() is None
    start = time.perf_counter()
    for _ in range(batch):
        events_module.emit("cache-hit", key="bench", backend="null")
    per_emit = (time.perf_counter() - start) / batch

    events_seconds = emissions * per_emit
    report_ms = _measure_report_speed()
    return {
        "programs": len(scopes),
        "crossings": crossings,
        "per_crossing_ns": round(per_crossing * 1e9, 1),
        "check_seconds": round(check_seconds, 4),
        "hook_seconds": round(hook_seconds, 6),
        "overhead_percent": round(100 * hook_seconds / check_seconds, 4),
        "emissions": emissions,
        "per_emit_ns": round(per_emit * 1e9, 1),
        "events_overhead_percent": round(
            100 * events_seconds / check_seconds, 4
        ),
        "report_ms_per_10k_events": report_ms,
    }


def _synthetic_report_journal(jobs=2500, workers=8):
    """A fleet-shaped journal of ~4 events per job — the input class
    ``oolong events report`` is priced on."""
    journal = obs.EventJournal()
    journal.emit("check-start", impls=jobs, backend="fleet")
    for w in range(workers):
        journal.emit("worker-registered", worker=f"w{w}", kind="remote")
    for job in range(jobs):
        worker = f"w{job % workers}"
        journal.emit(
            "lease-granted",
            lease=job,
            job=job,
            impl=f"impl_{job}",
            index=0,
            worker=worker,
            attempt=0,
        )
        journal.emit("lease-renewed", lease=job, job=job, worker=worker)
        journal.emit(
            "impl-checked",
            impl=f"impl_{job}",
            index=0,
            status="verified",
            lease=job,
            worker=worker,
            attempt=0,
        )
    journal.emit("check-end", ok=True, impls=jobs)
    return journal


def _measure_report_speed():
    """Milliseconds ``analyze_journal`` spends per 10k journal events.

    The analytics pass is offline (it runs after the fleet is done), so
    the budget is generous — but it must stay linear-ish in the journal:
    a 1M-event overnight soak journal has to report in seconds, not
    minutes. Best-of-3 over a ~10k-event synthetic fleet journal.
    """
    from repro.obs.analyze import analyze_journal

    records = _synthetic_report_journal().records
    best = min(
        _median_seconds(lambda: analyze_journal(records), repeats=1)
        for _ in range(3)
    )
    return round(best * 1000.0 * (10_000.0 / len(records)), 2)


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_overhead(Limits(time_budget=120.0))


def test_null_tracer_overhead(limits):
    """Crossings per examples-corpus run x null span cost < 1%."""
    row = measure_overhead(limits)
    print_row("OBS-OVERHEAD", **row)
    assert row["overhead_percent"] < 1.0


def test_null_event_path_overhead(limits):
    """Emissions per examples-corpus run x null emit cost < 1%."""
    row = measure_overhead(limits)
    print_row("OBS-EVENTS", **row)
    assert row["events_overhead_percent"] < 1.0


def test_report_analytics_scale_to_big_journals(limits):
    """``events report`` is offline, but it must stay cheap enough to run
    on soak journals: well under a second per 10k events."""
    ms = _measure_report_speed()
    print_row("OBS-REPORT", report_ms_per_10k_events=ms)
    assert ms < 1000.0


def test_armed_tracer_is_bounded(limits):
    """An installed tracer records every span and stays within a small
    constant factor of the bare run — profiling must be usable on the
    corpus itself, not only on toy inputs."""
    scopes = _example_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    def run_traced():
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            run_checks()
        return tracer

    baseline = _median_seconds(run_checks, repeats=3)
    armed = _median_seconds(run_traced, repeats=3)
    print_row(
        "OBS-ARMED",
        baseline_seconds=round(baseline, 4),
        armed_seconds=round(armed, 4),
        slowdown_percent=round(100 * (armed / baseline - 1), 2),
    )
    # generous bound: the point is "no systematic blowup", not a race
    # against scheduler noise
    assert armed < baseline * 1.5


def test_armed_journal_with_progress_is_bounded(limits):
    """An armed journal feeding a live progress renderer records every
    lifecycle event and stays within a small constant factor of the bare
    run — ``--events``/``--progress`` must be usable on real runs."""
    import io

    scopes = _example_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    def run_journaled():
        journal = obs.EventJournal()
        journal.add_listener(
            obs.ProgressRenderer(io.StringIO(), line_interval=0.0)
        )
        with obs.journaling(journal):
            run_checks()
        return journal

    assert len(run_journaled()) > 0
    baseline = _median_seconds(run_checks, repeats=3)
    armed = _median_seconds(run_journaled, repeats=3)
    print_row(
        "OBS-JOURNAL-ARMED",
        baseline_seconds=round(baseline, 4),
        armed_seconds=round(armed, 4),
        slowdown_percent=round(100 * (armed / baseline - 1), 2),
    )
    assert armed < baseline * 1.5


def main():
    row = measure_overhead(Limits(time_budget=120.0))
    payload = {
        "benchmark": "observability",
        "unit": "overhead_percent of examples-corpus check_scope wall-clock",
        "guard": "overhead_percent < 1.0 and events_overhead_percent < 1.0",
        "regression_keys": [
            "overhead_percent",
            "events_overhead_percent",
            "report_ms_per_10k_events",
        ],
        "entries": [row],
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print_row("OBS-OVERHEAD", **row)
    print(f"wrote {os.path.normpath(BENCH_JSON)}")


if __name__ == "__main__":
    sys.exit(main())
