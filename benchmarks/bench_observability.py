"""OBS-OVERHEAD: telemetry hooks must be free when no tracer is installed.

Every instrumentation site of the pipeline (the seven stage boundaries
of ``repro.obs.stages.STAGES``, plus per-implementation and per-VC child
spans) crosses :func:`repro.obs.span`. With no tracer installed a
crossing is one module-global ``None`` check returning a shared no-op
context manager. The claim measured here: total hook cost on an
ordinary ``check_scope`` run over the examples corpus — crossings x
per-crossing cost — is under 1% of the run's wall-clock.

Run as a script (``python benchmarks/bench_observability.py``) it
re-measures and rewrites ``BENCH_observability.json`` at the repo root —
the committed head of the observability bench trajectory.
"""

import json
import os
import sys
import time

if __package__ in (None, ""):  # script mode: python benchmarks/bench_observability.py
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

from benchmarks.conftest import print_row
from repro import obs
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
BENCH_JSON = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_observability.json"
)


def _median_seconds(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _example_scopes():
    """The examples corpus (every ``examples/*.oolong``), parsed once."""
    scopes = []
    for name in sorted(os.listdir(EXAMPLES_DIR)):
        if not name.endswith(".oolong"):
            continue
        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            scope = Scope.from_source(handle.read(), name)
        check_well_formed(scope)
        scopes.append((name, scope))
    assert scopes, "examples corpus is empty"
    return scopes


def measure_overhead(limits):
    """The numbers behind both the pytest guard and the committed JSON."""
    scopes = _example_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    # Count how many spans the corpus run would record: crossings of the
    # null path equal spans recorded by an installed tracer.
    tracer = obs.Tracer()
    with obs.tracing(tracer):
        run_checks()
    crossings = len(tracer.spans)
    assert crossings > 0

    check_seconds = _median_seconds(run_checks, repeats=3)

    # Per-crossing cost of the null fast path (span + enter + exit),
    # amortized over a large batch so timer resolution doesn't dominate.
    batch = 100_000
    start = time.perf_counter()
    for _ in range(batch):
        with obs.span("prove"):
            pass
    per_crossing = (time.perf_counter() - start) / batch

    hook_seconds = crossings * per_crossing
    return {
        "programs": len(scopes),
        "crossings": crossings,
        "per_crossing_ns": round(per_crossing * 1e9, 1),
        "check_seconds": round(check_seconds, 4),
        "hook_seconds": round(hook_seconds, 6),
        "overhead_percent": round(100 * hook_seconds / check_seconds, 4),
    }


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_overhead(Limits(time_budget=120.0))


def test_null_tracer_overhead(limits):
    """Crossings per examples-corpus run x null span cost < 1%."""
    row = measure_overhead(limits)
    print_row("OBS-OVERHEAD", **row)
    assert row["overhead_percent"] < 1.0


def test_armed_tracer_is_bounded(limits):
    """An installed tracer records every span and stays within a small
    constant factor of the bare run — profiling must be usable on the
    corpus itself, not only on toy inputs."""
    scopes = _example_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    def run_traced():
        tracer = obs.Tracer()
        with obs.tracing(tracer):
            run_checks()
        return tracer

    baseline = _median_seconds(run_checks, repeats=3)
    armed = _median_seconds(run_traced, repeats=3)
    print_row(
        "OBS-ARMED",
        baseline_seconds=round(baseline, 4),
        armed_seconds=round(armed, 4),
        slowdown_percent=round(100 * (armed / baseline - 1), 2),
    )
    # generous bound: the point is "no systematic blowup", not a race
    # against scheduler noise
    assert armed < baseline * 1.5


def main():
    row = measure_overhead(Limits(time_budget=120.0))
    payload = {
        "benchmark": "observability",
        "unit": "overhead_percent of examples-corpus check_scope wall-clock",
        "guard": "overhead_percent < 1.0",
        "regression_keys": ["overhead_percent"],
        "entries": [row],
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print_row("OBS-OVERHEAD", **row)
    print(f"wrote {os.path.normpath(BENCH_JSON)}")


if __name__ == "__main__":
    sys.exit(main())
