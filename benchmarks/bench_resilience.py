"""RESILIENCE-OVERHEAD: fault-injection hooks must be free on the clean path.

Every stage boundary of the pipeline (lex, parse, wellformed, pivot,
lint, vcgen, prove) now crosses a ``fault_point`` so the harness in
``repro.testing.faults`` can raise, delay, or corrupt there. When no
injector is active, a crossing is one module-global ``None`` check. The
claim measured here: the total hook cost on an ordinary ``check_scope``
run — crossings x per-crossing cost — is under 1% of the run's
wall-clock.
"""

import shutil
import tempfile
import time

from benchmarks.conftest import print_row
from repro.corpus.generators import generate_impl_farm
from repro.corpus.programs import PAPER_PROGRAMS
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel.ledger import RunLedger
from repro.prover.core import Limits
from repro.testing.faults import FaultPlan, fault_point, inject
from repro.vcgen.checker import check_scope


def _median_seconds(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _corpus_scopes():
    scopes = []
    for name, source in sorted(PAPER_PROGRAMS.items()):
        scope = Scope.from_source(source)
        check_well_formed(scope)
        scopes.append((name, scope))
    return scopes


#: The farm corpus used to price the run ledger: the shape the WAL was
#: built for (many small independent implementations, one commit each).
FARM_IMPLS = 24
FARM_FIELDS = 6
#: Unique verdicts committed when amortizing the per-commit cost: the
#: ledger dedupes repeats (a re-commit never reaches the write path),
#: so the batch must be this many *distinct* implementations.
COMMIT_BATCH = 200

_LEDGER_FIXTURES = {}


def _ledger_fixtures():
    """Memoized scopes/verdicts for :func:`measure_ledger_overhead`.

    Proving the commit-batch farm once is the expensive part; the
    regression harness calls ``measure_for_regression`` several times
    per invocation and only the timed sections below must re-run.
    """
    if not _LEDGER_FIXTURES:
        farm = Scope.from_source(generate_impl_farm(FARM_IMPLS, FARM_FIELDS))
        check_well_formed(farm)
        batch = Scope.from_source(generate_impl_farm(COMMIT_BATCH, 2))
        check_well_formed(batch)
        limits = Limits(time_budget=120.0)
        verdicts = check_scope(batch, limits).verdicts
        _LEDGER_FIXTURES.update(
            farm=farm, batch=batch, limits=limits, verdicts=verdicts
        )
    return _LEDGER_FIXTURES


def measure_ledger_overhead():
    """Amortized WAL commit cost charged against the farm wall-clock.

    Same methodology as the hook-cost row below: the unit cost (one
    fsync'd ``RunLedger.commit``) is amortized over a large batch of
    unique verdicts, then charged once per farm implementation against
    the plain ``check_scope`` wall-clock — a single end-to-end ledgered
    run cannot separate ~5ms of WAL traffic from scheduler noise, the
    amortized product can.
    """
    fixtures = _ledger_fixtures()
    farm, limits = fixtures["farm"], fixtures["limits"]

    check_seconds = _median_seconds(
        lambda: check_scope(farm, limits), repeats=3
    )

    run_dir = tempfile.mkdtemp(prefix="bench-ledger-")
    try:
        ledger = RunLedger(run_dir, fixtures["batch"], limits)
        start = time.perf_counter()
        for verdict in fixtures["verdicts"]:
            ledger.commit(verdict)
        per_commit = (time.perf_counter() - start) / len(
            fixtures["verdicts"]
        )
        ledger.close()
    finally:
        shutil.rmtree(run_dir, ignore_errors=True)

    ledger_seconds = FARM_IMPLS * per_commit
    return {
        "farm_impls": FARM_IMPLS,
        "commit_batch": len(fixtures["verdicts"]),
        "check_seconds": round(check_seconds, 4),
        "ledger_ms_per_commit": round(per_commit * 1e3, 3),
        "ledger_seconds": round(ledger_seconds, 4),
        "ledger_overhead_percent": round(
            100 * ledger_seconds / check_seconds, 3
        ),
    }


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_ledger_overhead()


def test_ledger_overhead_on_farm_corpus():
    """Crash-safety must be affordable: committing every verdict to the
    fsync'd run ledger costs under 2% of the farm corpus wall-clock."""
    row = measure_ledger_overhead()
    print_row("RESILIENCE-LEDGER", **row)
    assert row["ledger_overhead_percent"] < 2.0


def test_inactive_fault_point_cost(limits):
    """Crossings per corpus run x inactive per-crossing cost < 1%."""
    scopes = _corpus_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    # count how many times the pipeline actually crosses a hook: an
    # injector with an empty plan tallies hits without ever firing
    with inject(FaultPlan()) as injector:
        run_checks()
    crossings = sum(injector.counts.values())
    assert crossings > 0

    check_seconds = _median_seconds(run_checks, repeats=3)

    # per-crossing cost of the inactive fast path, amortized over a
    # large batch so the timer resolution doesn't dominate
    batch = 100_000
    start = time.perf_counter()
    for _ in range(batch):
        fault_point("prove", None)
    per_crossing = (time.perf_counter() - start) / batch

    hook_seconds = crossings * per_crossing
    ratio = hook_seconds / check_seconds
    print_row(
        "RESILIENCE-OVERHEAD",
        programs=len(scopes),
        crossings=crossings,
        per_crossing_ns=round(per_crossing * 1e9, 1),
        check_seconds=round(check_seconds, 4),
        hook_seconds=round(hook_seconds, 6),
        overhead_percent=round(100 * ratio, 4),
    )
    assert ratio < 0.01


def test_empty_injector_is_cheap(limits):
    """Even with an (empty-plan) injector armed, the corpus check stays
    within noise of the inactive baseline — the bookkeeping is a dict
    increment per crossing, nothing more."""
    scopes = _corpus_scopes()

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits)

    def run_checks_armed():
        with inject(FaultPlan()):
            run_checks()

    baseline = _median_seconds(run_checks, repeats=3)
    armed = _median_seconds(run_checks_armed, repeats=3)
    print_row(
        "RESILIENCE-ARMED",
        baseline_seconds=round(baseline, 4),
        armed_seconds=round(armed, 4),
        slowdown_percent=round(100 * (armed / baseline - 1), 2),
    )
    # generous bound: the point is "no systematic blowup", not a race
    # against scheduler noise
    assert armed < baseline * 1.25
