#!/usr/bin/env python3
"""Regenerate the measured numbers recorded in EXPERIMENTS.md.

Run:  python benchmarks/generate_report.py
"""

from __future__ import annotations

import time

from repro.api import check_program, parse_program
from repro.baselines.naive_modular import naive_check_scope
from repro.baselines.regions import check_single_region
from repro.baselines.whole_program import frame_query, infer_effects
from repro.corpus.generators import (
    generate_call_chain,
    generate_deep_groups,
    generate_pivot_tower,
    generate_wide_scope,
)
from repro.corpus.programs import (
    LINKED_LIST,
    ONCE_TWICE,
    PAPER_PROGRAMS,
    RATIONAL,
    SECTION3_CLIENT,
    SECTION3_CLIENT_INIT,
    SECTION3_HONEST_IMPLS,
    SECTION3_LEAKING_M,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_OWNER_DRIVER,
    SECTION3_UNSOUND_IMPLS,
    SECTION3_W,
    SECTION5_FIRST,
)
from repro.modular.monotonicity import check_monotonicity
from repro.oolong.parser import parse_program_text
from repro.prover.core import Limits
from repro.restrictions.pivot import check_pivot_uniqueness
from repro.semantics.interp import ExplorationConfig, OutcomeKind, explore_program

LIMITS = Limits(time_budget=120.0)
NO_MONITORS = ExplorationConfig(
    check_modifies=False,
    check_pivot_uniqueness=False,
    check_owner_exclusion=False,
)


def corpus_table() -> None:
    print("## corpus verification")
    for name, source in PAPER_PROGRAMS.items():
        report = check_program(source, LIMITS)
        for verdict in report.verdicts:
            stats = verdict.stats
            print(
                f"{name:14s} {verdict.impl.name:12s} {verdict.status.value:10s}"
                f" inst={stats.instantiations:4d} branches={stats.branches:4d}"
                f" rounds={stats.rounds:4d} time={stats.elapsed:7.3f}s"
            )


def section3() -> None:
    print("\n## section 3 scenarios")
    scope = parse_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
    violations = check_pivot_uniqueness(scope)
    print(f"EX-3.0 leak rejected by pivot uniqueness: {len(violations)} violation(s)")

    report = check_program(SECTION3_W + SECTION3_OWNER_BAD_CALL, LIMITS)
    print(
        f"EX-3.1 w={report.verdict_for('w').status.value}"
        f" bad-call={report.verdict_for('bad').status.value}"
    )

    unsound = parse_program(SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER)
    naive = naive_check_scope(unsound, LIMITS)
    outcomes = explore_program(unsound, "main", config=NO_MONITORS)
    wrong = sum(1 for o in outcomes if o.kind is OutcomeKind.WRONG_ASSERT)
    print(f"EX-3.1 naive ok={naive.ok}; runtime assert failures={wrong}")

    leaky = parse_program(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
    naive30 = naive_check_scope(leaky, LIMITS)
    outcomes30 = explore_program(leaky, "q2", config=NO_MONITORS)
    wrong30 = sum(1 for o in outcomes30 if o.kind is OutcomeKind.WRONG_ASSERT)
    monitored = explore_program(leaky, "q2")
    pivot_flags = sum(
        1 for o in monitored if o.kind is OutcomeKind.PIVOT_VIOLATION
    )
    print(
        f"EX-3.0 naive ok={naive30.ok}; runtime assert failures={wrong30};"
        f" pivot monitor flags={pivot_flags}"
    )


def monotonicity() -> None:
    print("\n## scope monotonicity")
    cases = {
        "RATIONAL": (RATIONAL, "group ms_extra\nfield ms_f in value"),
        "EX-3.0": (SECTION3_CLIENT, SECTION3_HONEST_IMPLS),
        "EX-3.1": (SECTION3_W, "group ms_extra\nfield ms_f in ms_extra"),
        "EX-5.1": (SECTION5_FIRST, "group ms_x\nfield ms_p maps g into ms_x"),
        "EX-5.2": (ONCE_TWICE, "field ms_f in g"),
        "EX-5.3": (LINKED_LIST, "field ms_f in g"),
    }
    violations = 0
    checked = 0
    for name, (base_source, extension_source) in cases.items():
        report = check_monotonicity(
            parse_program(base_source),
            parse_program_text(extension_source),
            LIMITS,
        )
        checked += len(report.results)
        violations += len(report.violations)
        print(f"{name:10s} impls={len(report.results)} violations={len(report.violations)}")
    print(f"total: {checked} impl pairs, {violations} violations")


def baselines() -> None:
    print("\n## baselines")
    interface = parse_program(SECTION3_CLIENT)
    table = infer_effects(interface)
    print(
        f"whole-program on interface-only scope: whole_program={table.whole_program}"
        f" push-effects={sorted(table.writes('push'))}"
    )
    full_source = SECTION3_CLIENT + (
        "\nfield vec in contents maps cnt into contents"
        "\nimpl push(st, o) { assume st != null ; assume st.vec != null ;"
        " st.vec.cnt := o + 0 }"
        "\nimpl m(st, r) { assume r != null ; r.obj := new() }"
    )
    full = parse_program(full_source)
    table = infer_effects(full)
    groups = check_program(full_source, LIMITS)
    print(
        "frame query 'does push preserve v.cnt':"
        f" inference={frame_query(table, 'push', 'cnt')}"
        f" data-groups(q)={groups.verdict_for('q').ok}"
    )
    multi = (
        "group a\ngroup b\nfield z in a, b\n"
        "proc p(t) modifies t.a\nimpl p(t) { assume t != null ; t.z := 1 }"
    )
    region_violations = check_single_region(parse_program(multi))
    dg = check_program(multi, LIMITS)
    print(
        f"multi-group program: regions reject={bool(region_violations)}"
        f" data-groups verify={dg.ok}"
    )


def scaling() -> None:
    print("\n## scaling")
    sweeps = {
        "wide-scope": (generate_wide_scope, (4, 8, 16)),
        "deep-groups": (generate_deep_groups, (2, 6, 12)),
        "pivot-tower": (generate_pivot_tower, (1, 2, 3)),
        "call-chain": (generate_call_chain, (1, 3, 6)),
    }
    for axis, (generator, sizes) in sweeps.items():
        row = []
        for size in sizes:
            report = check_program(generator(size), LIMITS)
            assert report.ok, f"{axis}@{size}"
            row.append(f"{size}:{report.elapsed:.2f}s")
        print(f"{axis:12s} " + "  ".join(row))


def main() -> None:
    start = time.monotonic()
    corpus_table()
    section3()
    monotonicity()
    baselines()
    scaling()
    print(f"\ntotal report time: {time.monotonic() - start:.1f}s")


if __name__ == "__main__":
    main()
