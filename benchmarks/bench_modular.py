"""MS: the modular-soundness (scope monotonicity) experiment.

Every verifiable corpus implementation is checked in its own scope D and
re-checked in an extension E ⊇ D; the paper's theorem demands zero
monotonicity violations. The extension used adds a new group, a field
inside an *existing* group, and a new pivot — the declarations most likely
to perturb inclusion reasoning.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import parse_program
from repro.corpus.programs import (
    LINKED_LIST,
    ONCE_TWICE,
    RATIONAL,
    SECTION3_CLIENT,
    SECTION3_W,
    SECTION5_FIRST,
)
from repro.modular.monotonicity import check_monotonicity
from repro.oolong.parser import parse_program_text

BASES = {
    "RATIONAL": (RATIONAL, "group ms_extra\nfield ms_f in value"),
    "EX-3.0": (SECTION3_CLIENT, "field ms_vec in contents maps cnt into contents"),
    "EX-3.1": (SECTION3_W, "group ms_extra\nfield ms_f in ms_extra"),
    "EX-5.1": (SECTION5_FIRST, "group ms_extra\nfield ms_piv maps g into ms_extra"),
    "EX-5.2": (ONCE_TWICE, "field ms_f in g"),
    "EX-5.3": (LINKED_LIST, "field ms_f in g"),
}


@pytest.mark.parametrize("name", sorted(BASES))
def test_monotonicity(benchmark, limits, name):
    base_source, extension_source = BASES[name]
    base = parse_program(base_source)
    extension = parse_program_text(extension_source)

    report = benchmark.pedantic(
        lambda: check_monotonicity(base, extension, limits),
        rounds=1,
        iterations=1,
    )
    print_row(
        "MS",
        base=name,
        impls=len(report.results),
        violations=len(report.violations),
        verdicts=";".join(
            f"{r.impl_name}:{r.base_verdict.value}->{r.extended_verdict.value}"
            for r in report.results
        ),
    )
    assert report.monotone
