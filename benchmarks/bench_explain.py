"""EXPLAIN-OVERHEAD: explanations must be free when not asked for.

Explain mode threads two capture channels through the prover: a proof
journal (appended at every fact assertion, unit propagation, case split,
and quantifier instance) and a SAT-leaf countermodel snapshot. Disabled
— the default — every journal site degenerates to one ``is not None``
check on ``Solver._journal``. The claim measured here mirrors
OBS-OVERHEAD: journal-site crossings per examples-corpus run x the cost
of a skipped guard is under 1% of the run's wall-clock.

Armed, explain mode is allowed to cost real time (it journals every
kernel step and replays the result), but must stay within a small
constant factor of the bare run, and every proof log it produces must
replay clean — the replay timing is reported alongside.

Run as a script (``python benchmarks/bench_explain.py``) it re-measures
and rewrites ``BENCH_explain.json`` at the repo root — the committed
head of this bench's trajectory, compared against fresh runs by
``benchmarks/check_regression.py``.
"""

import json
import os
import sys
import time

if __package__ in (None, ""):  # script mode: python benchmarks/bench_explain.py
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

from benchmarks.conftest import print_row
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.prover.prooflog import replay_proof_log
from repro.vcgen.checker import check_scope

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")
BENCH_JSON = os.path.join(os.path.dirname(__file__), "..", "BENCH_explain.json")


def _median_seconds(fn, repeats=3):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def _example_scopes():
    """The examples corpus (every ``examples/*.oolong``), parsed once."""
    scopes = []
    for name in sorted(os.listdir(EXAMPLES_DIR)):
        if not name.endswith(".oolong"):
            continue
        with open(os.path.join(EXAMPLES_DIR, name)) as handle:
            scope = Scope.from_source(handle.read(), name)
        check_well_formed(scope)
        scopes.append((name, scope))
    assert scopes, "examples corpus is empty"
    return scopes


def measure_explain(limits):
    """The numbers behind both the pytest guards and the committed JSON."""
    scopes = _example_scopes()

    def run_checks(explain=False):
        reports = []
        for _, scope in scopes:
            reports.append(check_scope(scope, limits, explain=explain))
        return reports

    # One explain-mode run up front: its proof logs count the journal
    # sites the disabled path crosses (every example implementation
    # verifies, so each run's journal covers its kernel steps exactly),
    # and its logs feed the replay timing.
    explained = run_checks(explain=True)
    logs = []
    crossings = 0
    for report in explained:
        for verdict in report.verdicts:
            explanation = verdict.explanation
            assert explanation is not None
            assert explanation.kind == "proof", (
                f"{verdict.impl.name}: examples corpus must verify, "
                f"got {verdict.status}"
            )
            assert explanation.replay is not None and explanation.replay.ok
            logs.append(explanation.proof_log)
            crossings += len(explanation.proof_log)
    assert crossings > 0

    check_seconds = _median_seconds(lambda: run_checks(explain=False))
    explain_seconds = _median_seconds(lambda: run_checks(explain=True))

    # Per-crossing cost of the disabled guard (`journal is not None`),
    # amortized over a large batch; the loop overhead included here makes
    # the estimate conservative.
    journal = None
    batch = 1_000_000
    start = time.perf_counter()
    for _ in range(batch):
        if journal is not None:
            raise AssertionError
    per_crossing = (time.perf_counter() - start) / batch

    replay_seconds = _median_seconds(
        lambda: [replay_proof_log(log) for log in logs]
    )

    hook_seconds = crossings * per_crossing
    return {
        "programs": len(scopes),
        "proof_logs": len(logs),
        "proof_steps": crossings,
        "per_crossing_ns": round(per_crossing * 1e9, 1),
        "check_seconds": round(check_seconds, 4),
        "hook_seconds": round(hook_seconds, 6),
        "null_overhead_percent": round(100 * hook_seconds / check_seconds, 4),
        "explain_seconds": round(explain_seconds, 4),
        "explain_slowdown_percent": round(
            100 * (explain_seconds / check_seconds - 1), 2
        ),
        "replay_seconds": round(replay_seconds, 4),
    }


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_explain(Limits(time_budget=120.0))


def test_null_path_overhead(limits):
    """Journal-site crossings x skipped-guard cost < 1% of the run."""
    row = measure_explain(limits)
    print_row("EXPLAIN-OVERHEAD", **row)
    assert row["null_overhead_percent"] < 1.0


def test_explain_mode_bounded(limits):
    """Armed explain mode (journal + countermodel + replay) stays within
    a small constant factor of the bare run — explanations must be
    usable on the corpus itself, not only on toy inputs."""
    row = measure_explain(limits)
    assert row["explain_seconds"] < row["check_seconds"] * 2.5 + 0.5


def main():
    row = measure_explain(Limits(time_budget=120.0))
    payload = {
        "benchmark": "explain",
        "unit": "null_overhead_percent of examples-corpus check_scope wall-clock",
        "guard": "null_overhead_percent < 1.0",
        "regression_keys": ["null_overhead_percent"],
        "entries": [row],
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print_row("EXPLAIN-OVERHEAD", **row)
    print(f"wrote {os.path.normpath(BENCH_JSON)}")


if __name__ == "__main__":
    sys.exit(main())
