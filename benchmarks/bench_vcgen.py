"""FIG2/FIG3: wlp and the method-call semantics (Figures 2 and 3).

Times verification-condition *generation* (no proving) over the corpus and
prints the VC sizes — the artifact corresponding to the paper's semantics
figures.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import parse_program
from repro.corpus.programs import PAPER_PROGRAMS
from repro.logic.terms import (
    And,
    Eq,
    Exists,
    Forall,
    Formula,
    Iff,
    Implies,
    Not,
    Or,
    Pred,
)
from repro.vcgen.vc import vc_for_impl


def formula_size(formula: Formula) -> int:
    if isinstance(formula, (Eq, Pred)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.body)
    if isinstance(formula, And):
        return 1 + sum(formula_size(c) for c in formula.conjuncts)
    if isinstance(formula, Or):
        return 1 + sum(formula_size(d) for d in formula.disjuncts)
    if isinstance(formula, Implies):
        return 1 + formula_size(formula.antecedent) + formula_size(formula.consequent)
    if isinstance(formula, Iff):
        return 1 + formula_size(formula.left) + formula_size(formula.right)
    if isinstance(formula, (Forall, Exists)):
        return 1 + formula_size(formula.body)
    return 1


def all_impl_bundles():
    bundles = []
    for source in PAPER_PROGRAMS.values():
        scope = parse_program(source)
        for impls in scope.impls.values():
            for impl in impls:
                bundles.append((scope, impl))
    return bundles


def test_fig2_fig3_vc_generation(benchmark):
    pairs = all_impl_bundles()

    def generate_all():
        return [vc_for_impl(scope, impl) for scope, impl in pairs]

    bundles = benchmark(generate_all)
    total_goal = sum(formula_size(b.goal) for b in bundles)
    total_hyp = sum(
        sum(formula_size(h) for h in b.hypotheses) for b in bundles
    )
    print_row(
        "FIG2+FIG3",
        impls=len(bundles),
        total_goal_nodes=total_goal,
        total_hypothesis_nodes=total_hyp,
    )
    assert len(bundles) >= 7
    assert total_goal > 100


def test_fig3_call_heavy_vc(benchmark):
    """The call rule dominates VC size: compare a call chain's goals."""
    from repro.corpus.generators import generate_call_chain

    scope = parse_program(generate_call_chain(10))
    impls = [impl for group in scope.impls.values() for impl in group]

    def generate():
        return [vc_for_impl(scope, impl) for impl in impls]

    bundles = benchmark(generate)
    sizes = sorted(formula_size(b.goal) for b in bundles)
    print_row("FIG3", chain_impls=len(bundles), goal_sizes=f"{sizes[0]}..{sizes[-1]}")
    # Every call contributes a frame quantifier, so callers' goals are
    # strictly bigger than the leaf's.
    assert sizes[-1] > sizes[0]
