"""STATIC-DISCHARGE: the effect analyzer must pay for itself.

The workload is the parallel impl farm (:func:`generate_impl_farm`):
every implementation writes only fields of the group its modifies list
licenses, so the inclusion lattice subsumes every write-licence
obligation and the whole farm is statically dischargeable. Three claims:

* at least **half** the farm's obligations are discharged without the
  prover (in practice all of them);
* the discharging run beats the full proving run outright — the
  committed ``discharged_over_full_ratio`` must stay **under 0.5**;
* the differential guard (``--check-discharge``) re-proves every
  prediction and reports **zero disagreements** — the analyzer never
  trades soundness for the speedup it reports.

The committed regression keys are a ratio and a fraction, not absolute
seconds, so a loaded CI runner slows numerator and denominator together
instead of failing the gate.

Run as a script (``python benchmarks/bench_static.py``) it re-measures
and rewrites ``BENCH_static.json`` at the repo root.
"""

import json
import os
import sys
import time

if __package__ in (None, ""):  # script mode
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

from benchmarks.conftest import print_row
from repro.corpus.generators import generate_impl_farm
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope

BENCH_JSON = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_static.json"
)

#: Workload shape: the same farm the parallel benchmark spreads over
#: workers, sized so the full proving run is long enough (~1s) that the
#: discharge speedup is measured, not timer noise.
FARM_IMPLS = 8
FARM_FIELDS = 12


def _farm_scope():
    scope = Scope.from_source(generate_impl_farm(FARM_IMPLS, FARM_FIELDS))
    check_well_formed(scope)
    return scope


def _best_seconds(fn, repeats=2):
    best = None
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def measure_static(limits, repeats=2):
    """The numbers behind both the pytest guards and the committed JSON."""
    scope = _farm_scope()
    full_seconds, full_report = _best_seconds(
        lambda: check_scope(scope, limits), repeats
    )
    discharged_seconds, discharged_report = _best_seconds(
        lambda: check_scope(scope, limits, static_discharge="on"), repeats
    )
    checked_report = check_scope(scope, limits, check_discharge=True)
    summary = discharged_report.discharge_summary
    obligations = summary["obligations"]
    discharge_rate = summary["discharge_rate"]
    return {
        "impls": FARM_IMPLS,
        "fields": FARM_FIELDS,
        "obligations_total": summary["obligations_total"],
        "obligations_discharged": obligations["static-valid"]
        + obligations["static-violation"],
        "discharge_rate": round(discharge_rate, 4),
        "full_seconds": round(full_seconds, 4),
        "discharged_seconds": round(discharged_seconds, 4),
        "discharged_over_full_ratio": round(
            discharged_seconds / full_seconds, 4
        ),
        "undischarged_fraction": round(1.0 - discharge_rate, 4),
        "disagreements": checked_report.discharge_summary.get(
            "disagreements", 0
        ),
        "verdicts_identical": [
            (v.impl.name, v.index, v.status.value)
            for v in discharged_report.verdicts
        ]
        == [
            (v.impl.name, v.index, v.status.value)
            for v in full_report.verdicts
        ],
    }


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_static(Limits(time_budget=120.0))


def test_farm_discharges_at_least_half(limits):
    row = measure_static(limits)
    print_row("STATIC-RATE", **row)
    assert row["discharge_rate"] >= 0.5


def test_discharge_beats_full_proving(limits):
    row = measure_static(limits, repeats=3)
    print_row("STATIC-SPEEDUP", **row)
    assert row["discharged_over_full_ratio"] < 0.5


def test_zero_disagreements_and_identical_verdicts(limits):
    row = measure_static(limits)
    print_row("STATIC-SOUNDNESS", **row)
    assert row["disagreements"] == 0
    assert row["verdicts_identical"]


def main():
    row = measure_static(Limits(time_budget=120.0), repeats=3)
    payload = {
        "benchmark": "static",
        "unit": (
            "seconds and ratios vs the full proving run on an "
            f"{FARM_IMPLS}-impl farm"
        ),
        "guard": (
            "discharge_rate >= 0.5; discharged_over_full_ratio < 0.5; "
            "disagreements == 0; verdicts identical with discharge on/off"
        ),
        "regression_keys": [
            "discharged_over_full_ratio",
            "undischarged_fraction",
        ],
        "entries": [row],
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print_row("STATIC-DISCHARGE", **row)
    print(f"wrote {os.path.normpath(BENCH_JSON)}")


if __name__ == "__main__":
    sys.exit(main())
