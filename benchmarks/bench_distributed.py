"""DIST-FLEET: distributed fleet checking must earn its keep.

Same impl-farm workload as ``bench_parallel`` (one scope, many
independent implementations — the shape scope monotonicity makes
parallelizable), one transport up. Three claims:

* the socket fleet's coordination machinery (bind, registration,
  pickled-scope welcome, lease traffic) is a bounded premium: with
  multiple cores a 4-worker fleet must beat the serial driver outright,
  and on any runner a 2-worker fleet stays within a small factor of
  serial (it cannot melt down);
* a **shared-cache-warm** rerun through the cache *server* — every
  verdict fetched over a socket round trip instead of a local file —
  must still be at least ~3x faster than proving serially; the wire
  premium over the local warm cache stays small in absolute terms;
* all committed regression keys are *ratios* against the same-process
  serial baseline, so a loaded CI runner slows numerator and
  denominator together instead of failing the gate.

Run as a script (``python benchmarks/bench_distributed.py``) it
re-measures and rewrites ``BENCH_distributed.json`` at the repo root.
"""

import json
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):  # script mode
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

import pytest

from benchmarks.conftest import print_row
from repro.corpus.generators import generate_impl_farm
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.parallel import FleetOptions
from repro.parallel.cacheserver import CacheServer
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope

BENCH_JSON = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_distributed.json"
)

#: Same workload shape as bench_parallel, so the two heads compare.
FARM_IMPLS = 8
FARM_FIELDS = 12


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _farm_scope():
    scope = Scope.from_source(generate_impl_farm(FARM_IMPLS, FARM_FIELDS))
    check_well_formed(scope)
    return scope


def _best_seconds(fn, repeats=2):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def _fleet(workers):
    return FleetOptions(workers=workers, registration_wait=60.0)


def measure_distributed(limits, repeats=2):
    """The numbers behind both the pytest guards and the committed JSON."""
    scope = _farm_scope()
    serial = _best_seconds(lambda: check_scope(scope, limits), repeats)
    fleet2 = _best_seconds(
        lambda: check_scope(scope, limits, fleet=_fleet(2)), repeats
    )
    fleet4 = _best_seconds(
        lambda: check_scope(scope, limits, fleet=_fleet(4)), repeats
    )
    cache_dir = tempfile.mkdtemp(prefix="oolong-bench-cacheserver-")
    try:
        with CacheServer(cache_dir) as server:
            start = time.perf_counter()
            check_scope(scope, limits, cache_url=server.url)
            cold_shared = time.perf_counter() - start
            warm_shared = _best_seconds(
                lambda: check_scope(scope, limits, cache_url=server.url),
                repeats,
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "impls": FARM_IMPLS,
        "fields": FARM_FIELDS,
        "cores": _cores(),
        "serial_seconds": round(serial, 4),
        "fleet2_seconds": round(fleet2, 4),
        "fleet4_seconds": round(fleet4, 4),
        "cold_shared_cache_seconds": round(cold_shared, 4),
        "warm_shared_cache_seconds": round(warm_shared, 4),
        "fleet2_over_serial_ratio": round(fleet2 / serial, 4),
        "fleet4_over_serial_ratio": round(fleet4 / serial, 4),
        "warm_shared_over_serial_ratio": round(warm_shared / serial, 4),
    }


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_distributed(Limits(time_budget=120.0))


def test_fleet2_overhead_is_bounded(limits):
    """Coordination over sockets cannot melt down vs the serial driver.

    On a single core the coordinator and both workers time-slice one
    CPU, so the ratio is dominated by oversubscription noise — the bound
    there is a meltdown bound, not an overhead bound.
    """
    row = measure_distributed(limits)
    print_row("DIST-OVERHEAD", **row)
    bound = 1.5 if row["cores"] >= 2 else 2.5
    assert row["fleet2_over_serial_ratio"] < bound


def test_fleet4_beats_serial_with_cores(limits):
    """With cores to spread over, a 4-worker fleet must win outright."""
    row = measure_distributed(limits, repeats=3)
    print_row("DIST-SPEEDUP", **row)
    if row["cores"] < 2:
        assert row["fleet4_over_serial_ratio"] < 3.0
        pytest.skip("single-core runner: speedup not measurable")
    assert row["fleet4_seconds"] < row["serial_seconds"]


def test_shared_warm_rerun_at_least_3x(limits):
    """A warm shared cache turns the run into socket round trips."""
    row = measure_distributed(limits)
    print_row("DIST-CACHE", **row)
    assert row["warm_shared_over_serial_ratio"] < 0.35


def main():
    row = measure_distributed(Limits(time_budget=120.0), repeats=3)
    payload = {
        "benchmark": "distributed",
        "unit": (
            "seconds and ratios vs the serial driver on an "
            f"{FARM_IMPLS}-impl farm"
        ),
        "guard": (
            "fleet2_over_serial_ratio < 1.5 (cores >= 2; < 2.5 single-core); "
            "warm_shared_over_serial_ratio < 0.35; fleet4 < serial when "
            "cores >= 2"
        ),
        "regression_keys": [
            "fleet2_over_serial_ratio",
            "fleet4_over_serial_ratio",
            "warm_shared_over_serial_ratio",
        ],
        "entries": [row],
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print_row("DIST-FLEET", **row)
    print(f"wrote {os.path.normpath(BENCH_JSON)}")


if __name__ == "__main__":
    sys.exit(main())
