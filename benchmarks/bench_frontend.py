"""FIG0/FIG1: the oolong grammar (Figures 0 and 1).

The paper's figures define the language; the reproduction artifact is the
frontend itself. These benches time parsing and the parse/print round-trip
over the full paper corpus and a large synthetic program.
"""

import pytest

from benchmarks.conftest import print_row
from repro.corpus.generators import generate_wide_scope
from repro.corpus.programs import PAPER_PROGRAMS
from repro.oolong.parser import parse_program_text
from repro.oolong.pretty import pretty_program

ALL_SOURCES = "\n".join(PAPER_PROGRAMS.values())


def test_fig0_parse_corpus(benchmark):
    decls = benchmark(parse_program_text, ALL_SOURCES)
    print_row("FIG0", corpus_decls=len(decls))
    assert len(decls) >= 25


def test_fig0_round_trip_corpus(benchmark):
    decls = parse_program_text(ALL_SOURCES)

    def round_trip():
        return parse_program_text(pretty_program(decls))

    again = benchmark(round_trip)
    assert again == decls
    print_row("FIG0", round_trip="stable")


def test_fig1_parse_wide_synthetic(benchmark):
    source = generate_wide_scope(200)
    decls = benchmark(parse_program_text, source)
    print_row("FIG1", synthetic_decls=len(decls), source_bytes=len(source))
    assert len(decls) == 203
