"""ABLATION: which design choices carry the proofs.

Three ablations called out in DESIGN.md:

1. **Relevancy filter off** — admitting instances of any width floods the
   search with wide case splits; on the hardest corpus proof (EX-3.0's
   client ``q``) the unfiltered prover saturates without closing, while
   the filtered prover verifies it. (The cyclic-inclusion EX-5.3 closes
   either way since the E-graph keeps congruence across backtracking;
   the filter is what scales the method to the deeper proofs.)
2. **Owner exclusion dropped from Init** — w's verification genuinely
   depends on the paper's property (5): without the entry assumption the
   VC is no longer provable.
3. **Ordered goal negation off** — the paper's hand proofs discharge a
   later obligation assuming the earlier ones; the ordered negation mirrors
   that structure. With the full background predicate (Init carries the
   owner-exclusion facts into every branch) both forms prove EX-5.1; the
   bench records that the ordered form is never more expensive.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import check_program, parse_program
from repro.corpus.programs import SECTION3_W, SECTION5_FIRST
from repro.prover.core import Limits, Verdict, prove_valid
from repro.vcgen.checker import ImplStatus
from repro.vcgen.vc import vc_for_impl


def test_ablation_relevancy_filter(benchmark):
    from repro.corpus.programs import SECTION3_CLIENT

    unfiltered = Limits(
        time_budget=60.0, max_instance_width=99, escalation_bonus=0
    )

    report = benchmark.pedantic(
        lambda: check_program(SECTION3_CLIENT, unfiltered), rounds=1, iterations=1
    )
    verdict = report.verdict_for("q")
    filtered = check_program(SECTION3_CLIENT, Limits(time_budget=60.0))
    print_row(
        "ABLATION",
        choice="relevancy filter",
        with_filter=filtered.verdict_for("q").status.value,
        without_filter=verdict.status.value,
    )
    assert filtered.verdict_for("q").status is ImplStatus.VERIFIED
    assert verdict.status is not ImplStatus.VERIFIED


def test_ablation_init_owner_exclusion(benchmark, limits):
    scope = parse_program(SECTION3_W)
    impl = scope.impls_of("w")[0]
    with_init = vc_for_impl(scope, impl)

    # Strip the Init conjunct (the last hypothesis) to drop property (5).
    without_init = vc_for_impl(scope, impl)
    stripped = without_init.hypotheses[:-1]

    result_with = benchmark.pedantic(
        lambda: with_init.prove(limits), rounds=1, iterations=1
    )
    result_without = prove_valid(stripped, without_init.goal, limits)
    print_row(
        "ABLATION",
        choice="Init ownExcl (paper's (5))",
        with_init=result_with.verdict.value,
        without_init=result_without.verdict.value,
    )
    assert result_with.verdict is Verdict.UNSAT
    assert result_without.verdict is not Verdict.UNSAT


def test_ablation_ordered_negation(benchmark, limits):
    from repro.logic.nnf import negate
    from repro.prover.core import Solver

    scope = parse_program(SECTION5_FIRST)
    bundle = vc_for_impl(scope, scope.impls_of("p")[0])

    def prove(ordered: bool):
        solver = Solver(limits)
        for hypothesis in bundle.hypotheses:
            solver.add(hypothesis)
        from repro.logic.nnf import skolemize

        nnf = negate(bundle.goal, ordered=ordered)
        solver._facts.append(skolemize(nnf, solver._fresh, "cex"))
        return solver.check()

    ordered_result = benchmark.pedantic(
        lambda: prove(True), rounds=1, iterations=1
    )
    unordered_result = prove(False)
    print_row(
        "ABLATION",
        choice="ordered goal negation",
        ordered=ordered_result.verdict.value,
        ordered_instances=ordered_result.stats.instantiations,
        unordered=unordered_result.verdict.value,
        unordered_instances=unordered_result.stats.instantiations,
    )
    # Both forms prove the example — the Init assumptions carry the facts
    # the paper's hand proofs pulled from earlier obligations — so this
    # choice is about proof-structure fidelity, not provability.
    assert ordered_result.verdict is Verdict.UNSAT
    assert unordered_result.verdict is Verdict.UNSAT
