"""Compare every committed ``BENCH_*.json`` against a fresh measurement.

Each committed bench head (``BENCH_<name>.json`` at the repo root) names
its benchmark, a ``guard`` invariant, and the ``regression_keys`` whose
growth counts as a regression. This script re-measures by calling
``benchmarks.bench_<name>.measure_for_regression()`` and fails (exit 1)
when a fresh value exceeds the committed one by more than the tolerance
— with a small absolute floor so near-zero ratios aren't failed on
timer noise.

Wall-clock comparisons on shared CI runners flake if taken from a single
cold measurement, so the harness re-measures: ``--warmup`` runs are
discarded (cold caches, first-import cost), then the elementwise **best
of ``--runs`` measurements** is compared — a regression must reproduce
across every run to fail the job, a one-off scheduler hiccup cannot.

Tolerances are configurable per invocation (CI passes looser ones than
the local default) via flags or environment:

    python benchmarks/check_regression.py \
        --relative 0.25 --floor 0.2 --runs 3 --warmup 1

    BENCH_REGRESSION_RELATIVE=0.25 python benchmarks/check_regression.py

Run by the CI ``bench-regression`` job.
"""

import argparse
import glob
import importlib
import json
import os
import sys

if __package__ in (None, ""):  # script mode
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

ROOT = os.path.join(os.path.dirname(__file__), "..")

#: Default allowed growth: fresh <= committed * (1 + RELATIVE) + FLOOR.
#: The floor absorbs measurement noise on values that are already tiny
#: (an overhead of 0.004% doubling to 0.008% is not a regression).
DEFAULT_RELATIVE = 0.10
DEFAULT_FLOOR = 0.2
#: Defaults for the re-measurement policy: one discarded warm-up, then
#: best-of-two comparisons.
DEFAULT_RUNS = 2
DEFAULT_WARMUP = 1


def _env_default(name, fallback, cast):
    value = os.environ.get(name)
    if value is None:
        return fallback
    try:
        return cast(value)
    except ValueError:
        print(f"warning: ignoring bad {name}={value!r}", file=sys.stderr)
        return fallback


def parse_args(argv=None):
    parser = argparse.ArgumentParser(
        description="Compare committed BENCH_*.json heads to fresh runs."
    )
    parser.add_argument(
        "--relative",
        type=float,
        default=_env_default(
            "BENCH_REGRESSION_RELATIVE", DEFAULT_RELATIVE, float
        ),
        help="allowed relative growth (default: %(default)s; env "
        "BENCH_REGRESSION_RELATIVE)",
    )
    parser.add_argument(
        "--floor",
        type=float,
        default=_env_default("BENCH_REGRESSION_FLOOR", DEFAULT_FLOOR, float),
        help="absolute slack added on top of the relative tolerance "
        "(default: %(default)s; env BENCH_REGRESSION_FLOOR)",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=_env_default("BENCH_REGRESSION_RUNS", DEFAULT_RUNS, int),
        help="fresh measurements per benchmark; the elementwise minimum "
        "is compared, so a regression must reproduce in every run "
        "(default: %(default)s; env BENCH_REGRESSION_RUNS)",
    )
    parser.add_argument(
        "--warmup",
        type=int,
        default=_env_default("BENCH_REGRESSION_WARMUP", DEFAULT_WARMUP, int),
        help="discarded warm-up measurements per benchmark "
        "(default: %(default)s; env BENCH_REGRESSION_WARMUP)",
    )
    parser.add_argument(
        "--only",
        metavar="NAME",
        default=None,
        help="check a single benchmark head (e.g. 'parallel')",
    )
    return parser.parse_args(argv)


def measure_fresh(module, keys, runs, warmup):
    """Best-of-``runs`` fresh measurement (after ``warmup`` discards).

    'Best' is the elementwise minimum over the regression keys: every
    key in a bench head measures a cost, so the minimum is the least
    machine-noise-contaminated observation of each.
    """
    for _ in range(max(0, warmup)):
        module.measure_for_regression()
    best = None
    for _ in range(max(1, runs)):
        row = module.measure_for_regression()
        if best is None:
            best = dict(row)
        else:
            for key in keys:
                if key in row and key in best:
                    best[key] = min(best[key], row[key])
    return best


def check_bench(path, options):
    """Yield ``(key, committed, fresh, ok)`` rows for one bench head."""
    with open(path) as handle:
        payload = json.load(handle)
    name = payload["benchmark"]
    module = importlib.import_module(f"benchmarks.bench_{name}")
    keys = payload.get("regression_keys", [])
    fresh = measure_fresh(module, keys, options.runs, options.warmup)
    committed = payload["entries"][-1]
    for key in keys:
        limit = committed[key] * (1 + options.relative) + options.floor
        yield key, committed[key], fresh[key], fresh[key] <= limit


def main(argv=None):
    options = parse_args(argv)
    pattern = os.path.join(ROOT, "BENCH_*.json")
    paths = sorted(glob.glob(pattern))
    if options.only is not None:
        paths = [
            p
            for p in paths
            if os.path.basename(p) == f"BENCH_{options.only}.json"
        ]
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    print(
        f"tolerance: fresh <= committed * {1 + options.relative:.2f} "
        f"+ {options.floor} (best of {options.runs} run(s), "
        f"{options.warmup} warm-up(s))"
    )
    failed = False
    for path in paths:
        base = os.path.basename(path)
        for key, committed, fresh, ok in check_bench(path, options):
            status = "ok" if ok else "REGRESSION"
            print(
                f"{base}: {key} committed={committed} fresh={fresh} {status}"
            )
            failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
