"""Compare every committed ``BENCH_*.json`` against a fresh measurement.

Each committed bench head (``BENCH_<name>.json`` at the repo root) names
its benchmark, a ``guard`` invariant, and the ``regression_keys`` whose
growth counts as a regression. This script re-measures by calling
``benchmarks.bench_<name>.measure_for_regression()`` and fails (exit 1)
when a fresh value exceeds the committed one by more than 10% — with a
small absolute floor so near-zero ratios aren't failed on timer noise.

Run by the CI ``bench-regression`` job:

    python benchmarks/check_regression.py
"""

import glob
import importlib
import json
import os
import sys

if __package__ in (None, ""):  # script mode
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

ROOT = os.path.join(os.path.dirname(__file__), "..")

#: Allowed growth: fresh <= committed * (1 + RELATIVE) + FLOOR. The
#: floor absorbs measurement noise on values that are already tiny
#: (an overhead of 0.004% doubling to 0.008% is not a regression).
RELATIVE = 0.10
FLOOR = 0.2


def check_bench(path):
    """Yield ``(key, committed, fresh, ok)`` rows for one bench head."""
    with open(path) as handle:
        payload = json.load(handle)
    name = payload["benchmark"]
    module = importlib.import_module(f"benchmarks.bench_{name}")
    fresh = module.measure_for_regression()
    keys = payload.get("regression_keys", [])
    committed = payload["entries"][-1]
    for key in keys:
        limit = committed[key] * (1 + RELATIVE) + FLOOR
        yield key, committed[key], fresh[key], fresh[key] <= limit


def main():
    pattern = os.path.join(ROOT, "BENCH_*.json")
    paths = sorted(glob.glob(pattern))
    if not paths:
        print("no BENCH_*.json files found", file=sys.stderr)
        return 1
    failed = False
    for path in paths:
        base = os.path.basename(path)
        for key, committed, fresh, ok in check_bench(path):
            status = "ok" if ok else "REGRESSION"
            print(
                f"{base}: {key} committed={committed} fresh={fresh} {status}"
            )
            failed = failed or not ok
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
