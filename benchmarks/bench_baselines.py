"""BASE: comparisons against the related-work baselines (Section 1).

Three comparisons, with the paper's qualitative claims asserted:

1. **Whole-program inference**: needs every implementation (goes to the
   top effect without them) and answers frame queries object-insensitively
   — the data-group checker answers the paper's q/v.cnt query where the
   inference cannot.
2. **Greenhouse–Boyland regions**: rejects multi-group programs that data
   groups verify.
3. **Naive modular checking**: faster per implementation (fewer
   obligations), but unsound — the price of dropping the restrictions.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import check_program, parse_program
from repro.baselines.naive_modular import naive_check_scope
from repro.baselines.regions import check_single_region
from repro.baselines.whole_program import frame_query, infer_effects
from repro.corpus.programs import (
    SECTION3_CLIENT,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_W,
)
from repro.vcgen.checker import check_scope

MULTI_GROUP = """
group position
group appearance
field x in position
field color in appearance
field z in position, appearance
proc move(t) modifies t.position
impl move(t) { assume t != null ; t.x := 1 ; t.z := 2 }
"""


def test_base_whole_program_needs_whole_program(benchmark):
    # Interface-only scope: inference degenerates to the top effect.
    scope = parse_program(SECTION3_CLIENT)
    table = benchmark(infer_effects, scope)
    print_row(
        "BASE",
        baseline="whole-program",
        whole_program_available=table.whole_program,
        push_effects=sorted(table.writes("push")),
    )
    assert not table.whole_program
    # push has no impl here: inference must assume it writes everything.
    assert table.writes("push") == set(scope.fields)


def test_base_whole_program_is_object_insensitive(benchmark, limits):
    # Give push an implementation that writes *some* stack's cnt: the
    # field-level inference now says NO x.cnt survives push, while the
    # data-group checker still verifies q's v.cnt.
    source = SECTION3_CLIENT + (
        "\nfield vec in contents maps cnt into contents"
        "\nimpl push(st, o) { assume st != null ; assume st.vec != null ;"
        " st.vec.cnt := o + 0 }"
        "\nimpl m(st, r) { assume r != null ; r.obj := new() }"
    )
    scope = parse_program(source)
    table = infer_effects(scope)
    inference_preserves = frame_query(table, "push", "cnt")
    report = benchmark.pedantic(
        lambda: check_scope(scope, limits), rounds=1, iterations=1
    )
    groups_verify_q = report.verdict_for("q").ok
    print_row(
        "BASE",
        baseline="whole-program precision",
        inference_answers_q=inference_preserves,
        data_groups_answer_q=groups_verify_q,
    )
    assert not inference_preserves  # field-level: cnt is written somewhere
    assert groups_verify_q  # object-level: but not *v's* cnt


def test_base_regions_reject_multi_group(benchmark, limits):
    scope = parse_program(MULTI_GROUP)
    violations = benchmark(check_single_region, scope)
    report = check_program(MULTI_GROUP, limits)
    print_row(
        "BASE",
        baseline="regions",
        region_violations=len(violations),
        data_groups_verdict="ok" if report.ok else "failed",
    )
    assert violations and report.ok


def test_base_naive_is_cheaper_but_unsound(benchmark, limits):
    source = SECTION3_W + SECTION3_OWNER_BAD_CALL
    scope = parse_program(source)

    naive = benchmark.pedantic(
        lambda: naive_check_scope(scope, limits), rounds=1, iterations=1
    )
    full = check_scope(scope, limits)
    print_row(
        "BASE",
        baseline="naive",
        naive_accepts_bad_call=naive.verdict_for("bad").ok,
        full_rejects_bad_call=not full.verdict_for("bad").ok,
        naive_seconds=round(naive.elapsed, 3),
        full_seconds=round(full.elapsed, 3),
    )
    assert naive.verdict_for("bad").ok
    assert not full.verdict_for("bad").ok
