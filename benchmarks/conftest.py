"""Shared fixtures and reporting helpers for the benchmark harness.

Each bench module regenerates one experiment row of EXPERIMENTS.md: it
*times* the pipeline stage under pytest-benchmark and *prints* the
qualitative row the paper reports (verdicts, who wins, by what shape),
asserting the expected outcome so a regression fails loudly.
"""

from __future__ import annotations

import pytest

from repro.prover.core import Limits


@pytest.fixture
def limits():
    """Prover limits used across benchmarks."""
    return Limits(time_budget=120.0)


def print_row(experiment: str, **fields) -> None:
    """Print one experiment-result row in a stable grep-friendly format."""
    rendered = " ".join(f"{key}={value}" for key, value in fields.items())
    print(f"[{experiment}] {rendered}")
