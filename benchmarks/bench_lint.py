"""LINT-OVERHEAD: the static-analysis pre-filter must be (nearly) free.

``check_scope`` now runs the lint engine — syntactic restrictions, the
flow-sensitive escape analysis, modifies inference, declaration and
reachability lints — before generating any verification conditions. The
claim measured here: on the paper's worked examples the pre-filter adds
less than 5% wall-clock over the prover-only pipeline.
"""

import time

import pytest

from benchmarks.conftest import print_row
from repro.analysis.engine import lint_scope
from repro.corpus.programs import PAPER_PROGRAMS
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.vcgen.checker import check_scope


def _median_seconds(fn, repeats=5):
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return sorted(samples)[len(samples) // 2]


def test_lint_prefilter_overhead(limits):
    """Lint wall-clock vs. full check wall-clock over the whole corpus."""
    scopes = []
    for name, source in sorted(PAPER_PROGRAMS.items()):
        scope = Scope.from_source(source)
        check_well_formed(scope)
        scopes.append((name, scope))

    def run_checks():
        for _, scope in scopes:
            check_scope(scope, limits, lint=False)

    def run_lints():
        for _, scope in scopes:
            lint_scope(scope)

    check_seconds = _median_seconds(run_checks, repeats=3)
    lint_seconds = _median_seconds(run_lints, repeats=5)
    ratio = lint_seconds / check_seconds
    print_row(
        "LINT-OVERHEAD",
        programs=len(scopes),
        check_seconds=round(check_seconds, 4),
        lint_seconds=round(lint_seconds, 4),
        overhead_percent=round(100 * ratio, 2),
    )
    assert ratio < 0.05


@pytest.mark.parametrize("experiment", sorted(PAPER_PROGRAMS))
def test_lint_alone_is_fast(benchmark, experiment):
    """Absolute lint latency per program (editor-integration budget)."""
    scope = Scope.from_source(PAPER_PROGRAMS[experiment])
    check_well_formed(scope)
    result = benchmark(lambda: lint_scope(scope))
    print_row(
        f"LINT-{experiment}",
        diagnostics=len(result.diagnostics),
        procs=len(result.inferred_modifies),
    )
    assert result.ok
