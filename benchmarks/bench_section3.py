"""EX-3.0 / EX-3.1: the motivating scenarios of Section 3.

Reproduced shape (per DESIGN.md):

* the client programs verify *modularly* (without the private stack
  implementation in scope);
* the alias-leaking ``m`` is rejected syntactically by pivot uniqueness;
* the forbidden call ``w(st, st.vec)`` is rejected by owner exclusion;
* the naive baseline (no restrictions) accepts everything — and the
  interpreter then exhibits the runtime assertion failure, i.e. the two
  restrictions are exactly what buys modular soundness.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import check_program, parse_program
from repro.baselines.naive_modular import naive_check_scope
from repro.corpus.programs import (
    SECTION3_CLIENT,
    SECTION3_CLIENT_INIT,
    SECTION3_LEAKING_M,
    SECTION3_OWNER_BAD_CALL,
    SECTION3_OWNER_DRIVER,
    SECTION3_UNSOUND_IMPLS,
    SECTION3_W,
)
from repro.restrictions.pivot import check_pivot_uniqueness
from repro.semantics.interp import ExplorationConfig, OutcomeKind, explore_program

NO_MONITORS = ExplorationConfig(
    check_modifies=False,
    check_pivot_uniqueness=False,
    check_owner_exclusion=False,
)


def test_ex30_client_verifies_modularly(benchmark, limits):
    report = benchmark.pedantic(
        lambda: check_program(SECTION3_CLIENT, limits), rounds=1, iterations=1
    )
    verdict = report.verdict_for("q")
    print_row(
        "EX-3.0",
        scenario="client q",
        status=verdict.status.value,
        instantiations=verdict.stats.instantiations,
    )
    assert verdict.ok


def test_ex30_leak_rejected(benchmark):
    scope = parse_program(SECTION3_CLIENT + SECTION3_LEAKING_M)
    violations = benchmark(check_pivot_uniqueness, scope)
    print_row("EX-3.0", scenario="leaking m", violations=len(violations))
    assert violations


def test_ex30_naive_accepts_and_runtime_fails(benchmark, limits):
    scope = parse_program(SECTION3_CLIENT_INIT + SECTION3_UNSOUND_IMPLS)
    report = naive_check_scope(scope, limits)
    outcomes = benchmark.pedantic(
        lambda: explore_program(scope, "q2", config=NO_MONITORS),
        rounds=1,
        iterations=1,
    )
    leaked_ok = all(v.ok for v in report.verdicts if v.impl.name == "m")
    wrong = sum(1 for o in outcomes if o.kind is OutcomeKind.WRONG_ASSERT)
    print_row(
        "EX-3.0",
        scenario="naive+runtime",
        naive_accepts_leak=leaked_ok,
        runtime_assert_failures=wrong,
    )
    assert leaked_ok and wrong > 0


def test_ex31_w_verifies_and_bad_call_rejected(benchmark, limits):
    source = SECTION3_W + SECTION3_OWNER_BAD_CALL

    report = benchmark.pedantic(
        lambda: check_program(source, limits), rounds=1, iterations=1
    )
    w_verdict = report.verdict_for("w")
    bad_verdict = report.verdict_for("bad")
    print_row(
        "EX-3.1",
        w=w_verdict.status.value,
        bad_call=bad_verdict.status.value,
    )
    assert w_verdict.ok and not bad_verdict.ok


def test_ex31_naive_accepts_and_runtime_fails(benchmark, limits):
    scope = parse_program(
        SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER
    )
    report = naive_check_scope(scope, limits)
    outcomes = benchmark.pedantic(
        lambda: explore_program(scope, "main", config=NO_MONITORS),
        rounds=1,
        iterations=1,
    )
    wrong = sum(1 for o in outcomes if o.kind is OutcomeKind.WRONG_ASSERT)
    print_row(
        "EX-3.1",
        scenario="naive+runtime",
        naive_ok=report.ok,
        runtime_assert_failures=wrong,
    )
    assert report.ok and wrong > 0


def test_ex31_monitors_catch_violation_first(benchmark):
    scope = parse_program(
        SECTION3_W + SECTION3_OWNER_BAD_CALL + SECTION3_OWNER_DRIVER
    )
    outcomes = benchmark.pedantic(
        lambda: explore_program(scope, "main"), rounds=1, iterations=1
    )
    kinds = {o.kind for o in outcomes}
    print_row(
        "EX-3.1",
        scenario="monitored runtime",
        owner_exclusion_flagged=OutcomeKind.OWNER_EXCLUSION_VIOLATION in kinds,
    )
    assert OutcomeKind.OWNER_EXCLUSION_VIOLATION in kinds
    assert OutcomeKind.WRONG_ASSERT not in kinds
