"""EX-5.1 / EX-5.2 / EX-5.3: the paper's three worked verification examples.

Paper claims reproduced here:

* EX-5.1 (``p``/``q`` with the ``t.c.d.g`` designator) — three proof
  obligations, discharged mechanically.
* EX-5.2 (``once``/``twice``) — pivot uniqueness subsumes the
  swinging-pivots restriction; "our proof system makes programs such as
  the one above easy to prove".
* EX-5.3 (linked list, cyclic ``g —next→ g``) — the paper's hand proof is
  "delightfully simple", but its Simplify-based checker looped. Our
  bounded relevancy-filtered prover closes it; the bench records the
  instantiation counts that demonstrate the matching stayed bounded.
"""

import pytest

from benchmarks.conftest import print_row
from repro.api import check_program
from repro.corpus.programs import LINKED_LIST, ONCE_TWICE, SECTION5_FIRST
from repro.vcgen.checker import ImplStatus

CASES = {
    "EX-5.1": (SECTION5_FIRST, "p"),
    "EX-5.2": (ONCE_TWICE, "twice"),
    "EX-5.3": (LINKED_LIST, "updateAll"),
}


@pytest.mark.parametrize("experiment", sorted(CASES))
def test_example_verifies(benchmark, limits, experiment):
    source, impl_name = CASES[experiment]

    def run():
        return check_program(source, limits)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    verdict = report.verdict_for(impl_name)
    stats = verdict.stats
    print_row(
        experiment,
        impl=impl_name,
        status=verdict.status.value,
        instantiations=stats.instantiations,
        branches=stats.branches,
        rounds=stats.rounds,
        prover_seconds=round(stats.elapsed, 3),
    )
    assert verdict.status is ImplStatus.VERIFIED
    # The headline EX-5.3 claim: no matching loop — instantiations stay
    # bounded (the paper's prover diverged on this example).
    assert stats.instantiations < 1000


def test_ex53_instantiation_profile(limits):
    """Which axioms the cyclic-inclusion proof actually exercises."""
    report = check_program(LINKED_LIST, limits)
    stats = report.verdict_for("updateAll").stats
    top = sorted(stats.per_quantifier.items(), key=lambda kv: -kv[1])[:6]
    for name, count in top:
        print_row("EX-5.3-profile", axiom=name, instances=count)
    assert any(name == "inc-step" for name, _ in top), (
        "the cyclic proof must step through the rep inclusion"
    )
