"""PAR-SUPERVISOR: supervised parallel checking must earn its keep.

The workload is an *impl farm* (:func:`generate_impl_farm`): one scope,
many independent implementations of comparable proof cost — exactly the
shape scope monotonicity makes parallelizable. Three claims:

* ``parallel=1`` pays for the supervisor (fork, pipes, heartbeat,
  scheduling loop) on top of the same serial proof work; that premium
  must stay **under 5%** of the serial run;
* with multiple cores, 4 workers must beat the serial driver outright
  (on a single-core runner this degrades to a bounded-overhead check —
  speedup is physically unavailable there, and the committed head
  records the core count it was measured on);
* a **cache-warm** rerun (same sources, same limits, populated
  ``--cache-dir``) must be at least **5x** faster than the serial run —
  in practice it's orders of magnitude, since every verdict is served
  from disk.

All committed regression keys are *ratios* against the same-process
serial baseline, so a loaded CI runner slows numerator and denominator
together instead of failing the gate.

Run as a script (``python benchmarks/bench_parallel.py``) it re-measures
and rewrites ``BENCH_parallel.json`` at the repo root.
"""

import json
import os
import shutil
import sys
import tempfile
import time

if __package__ in (None, ""):  # script mode
    sys.path.insert(
        0, os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )

import pytest

from benchmarks.conftest import print_row
from repro.corpus.generators import generate_impl_farm
from repro.oolong.program import Scope
from repro.oolong.wellformed import check_well_formed
from repro.prover.core import Limits
from repro.vcgen.checker import check_scope

BENCH_JSON = os.path.join(
    os.path.dirname(__file__), "..", "BENCH_parallel.json"
)

#: Workload shape: enough impls to keep 4 workers busy, per-impl cost
#: large enough (~100ms) that scheduling overhead is measurable as a
#: ratio rather than drowned in timer noise.
FARM_IMPLS = 8
FARM_FIELDS = 12


def _cores():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _farm_scope():
    scope = Scope.from_source(generate_impl_farm(FARM_IMPLS, FARM_FIELDS))
    check_well_formed(scope)
    return scope


def _best_seconds(fn, repeats=2):
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best


def measure_parallel(limits, repeats=2):
    """The numbers behind both the pytest guards and the committed JSON."""
    scope = _farm_scope()
    serial = _best_seconds(lambda: check_scope(scope, limits), repeats)
    parallel1 = _best_seconds(
        lambda: check_scope(scope, limits, parallel=1), repeats
    )
    parallel2 = _best_seconds(
        lambda: check_scope(scope, limits, parallel=2), repeats
    )
    parallel4 = _best_seconds(
        lambda: check_scope(scope, limits, parallel=4), repeats
    )
    cache_dir = tempfile.mkdtemp(prefix="oolong-bench-cache-")
    try:
        start = time.perf_counter()
        check_scope(scope, limits, cache_dir=cache_dir)
        cold = time.perf_counter() - start
        warm = _best_seconds(
            lambda: check_scope(scope, limits, cache_dir=cache_dir), repeats
        )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "impls": FARM_IMPLS,
        "fields": FARM_FIELDS,
        "cores": _cores(),
        "serial_seconds": round(serial, 4),
        "parallel1_seconds": round(parallel1, 4),
        "parallel2_seconds": round(parallel2, 4),
        "parallel4_seconds": round(parallel4, 4),
        "cold_cache_seconds": round(cold, 4),
        "warm_cache_seconds": round(warm, 4),
        "parallel1_over_serial_ratio": round(parallel1 / serial, 4),
        "parallel4_over_serial_ratio": round(parallel4 / serial, 4),
        "warm_over_serial_ratio": round(warm / serial, 4),
    }


def measure_for_regression():
    """Entry point for ``benchmarks/check_regression.py``."""
    return measure_parallel(Limits(time_budget=120.0))


def test_parallel1_overhead_under_5_percent(limits):
    """The whole supervision apparatus on one worker costs < 5%."""
    row = measure_parallel(limits, repeats=3)
    print_row("PAR-OVERHEAD", **row)
    assert row["parallel1_over_serial_ratio"] < 1.05


def test_four_workers_beat_serial(limits):
    """With cores to spread over, -j 4 must win; without, stay bounded."""
    row = measure_parallel(limits, repeats=3)
    print_row("PAR-SPEEDUP", **row)
    if row["cores"] < 2:
        # A single-core runner cannot show a speedup; the honest check
        # there is that oversubscription doesn't blow up either.
        assert row["parallel4_over_serial_ratio"] < 1.5
        pytest.skip("single-core runner: speedup not measurable")
    assert row["parallel4_seconds"] < row["serial_seconds"]


def test_cache_warm_rerun_at_least_5x(limits):
    """A warm cache turns the whole run into disk reads."""
    row = measure_parallel(limits)
    print_row("PAR-CACHE", **row)
    assert row["warm_over_serial_ratio"] < 0.2


def main():
    row = measure_parallel(Limits(time_budget=120.0), repeats=3)
    payload = {
        "benchmark": "parallel",
        "unit": (
            "seconds and ratios vs the serial driver on an "
            f"{FARM_IMPLS}-impl farm"
        ),
        "guard": (
            "parallel1_over_serial_ratio < 1.05; warm_over_serial_ratio "
            "< 0.2; parallel4 < serial when cores >= 2"
        ),
        "regression_keys": [
            "parallel1_over_serial_ratio",
            "parallel4_over_serial_ratio",
            "warm_over_serial_ratio",
        ],
        "entries": [row],
    }
    with open(BENCH_JSON, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print_row("PAR-SUPERVISOR", **row)
    print(f"wrote {os.path.normpath(BENCH_JSON)}")


if __name__ == "__main__":
    sys.exit(main())
